package lint

import (
	"go/ast"
	"strings"
)

// wallClockFuncs are the time package entry points that read the wall (or
// monotonic) clock. time.Sleep is deliberately absent: sleeping does not
// leak the clock into computed values.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// NewWallTime builds the walltime analyzer: sanitized output must be a pure
// function of (input, seed), so the wall clock may only be read inside the
// observability layer (span timing, pool gauges), never inside pipeline
// logic where it could leak into published values. exempt lists the package
// paths (exact or prefix) where clock reads are the package's purpose;
// individual span-timing call sites elsewhere carry //lint:allow walltime.
func NewWallTime(exempt ...string) *Analyzer {
	a := &Analyzer{
		Name: "walltime",
		Doc:  "forbid wall-clock reads outside the observability layer and annotated span-timing sites",
	}
	if len(exempt) > 0 {
		a.Match = func(pkgPath string) bool {
			for _, e := range exempt {
				if pkgPath == e || strings.HasPrefix(pkgPath, e+"/") {
					return false
				}
			}
			return true
		}
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if pkg, name, ok := pass.CalleeOf(call); ok && pkg == "time" && wallClockFuncs[name] {
					pass.Reportf(call.Pos(),
						"time.%s reads the wall clock outside the observability layer; use obs spans or annotate the timing site", name)
				}
				return true
			})
		}
	}
	return a
}
