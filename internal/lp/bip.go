package lp

import (
	"fmt"
	"math"
)

// BIPResult is the outcome of the relax-and-round procedure.
type BIPResult struct {
	X         []int     // rounded binary solution
	Relaxed   []float64 // the fractional LP optimum
	Objective float64   // objective value of the rounded solution
}

// SolveBinary approximately solves
//
//	minimize  cᵀx
//	s.t.      minOnes ≤ Σ x_k ≤ maxOnes,   x_k ∈ {0,1}
//
// — the structure of the paper's key-frame selection problem (Equation 9) —
// by LP relaxation and 0.5-rounding (Section 3.3.2), then repairs the
// cardinality constraints exactly: if rounding produced too few ones, the
// zeros with the largest fractional values (ties broken by smallest cost)
// are promoted; too many, the ones with the smallest fractional values are
// demoted. The repair preserves feasibility, which pure 0.5-rounding does
// not guarantee.
func SolveBinary(costs []float64, minOnes, maxOnes int) (*BIPResult, error) {
	n := len(costs)
	if n == 0 {
		return nil, fmt.Errorf("%w: no variables", ErrMalformed)
	}
	if minOnes < 0 {
		minOnes = 0
	}
	if maxOnes > n {
		maxOnes = n
	}
	if minOnes > maxOnes {
		return nil, fmt.Errorf("%w: minOnes %d > maxOnes %d", ErrMalformed, minOnes, maxOnes)
	}

	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	upper := make([]float64, n)
	for i := range upper {
		upper[i] = 1
	}
	p := &Problem{
		Objective: costs,
		Constraints: []Constraint{
			{Coeffs: ones, Op: GE, RHS: float64(minOnes)},
			{Coeffs: ones, Op: LE, RHS: float64(maxOnes)},
		},
		Upper: upper,
	}
	relaxed, _, err := Solve(p)
	if err != nil {
		return nil, err
	}

	x := make([]int, n)
	count := 0
	for i, v := range relaxed {
		if v >= 0.5 {
			x[i] = 1
			count++
		}
	}

	// Repair cardinality.
	for count < minOnes {
		best := -1
		for i := range x {
			if x[i] == 1 {
				continue
			}
			if best == -1 || better(relaxed[i], costs[i], relaxed[best], costs[best]) {
				best = i
			}
		}
		x[best] = 1
		count++
	}
	for count > maxOnes {
		worst := -1
		for i := range x {
			if x[i] == 0 {
				continue
			}
			if worst == -1 || better(relaxed[worst], costs[worst], relaxed[i], costs[i]) {
				worst = i
			}
		}
		x[worst] = 0
		count--
	}

	var obj float64
	for i := range x {
		obj += float64(x[i]) * costs[i]
	}
	return &BIPResult{X: x, Relaxed: relaxed, Objective: obj}, nil
}

// better reports whether candidate (frac1, cost1) is preferable to
// (frac2, cost2) for promotion to 1: larger fractional value wins, ties go
// to smaller cost.
func better(frac1, cost1, frac2, cost2 float64) bool {
	if math.Abs(frac1-frac2) > 1e-12 {
		return frac1 > frac2
	}
	return cost1 < cost2
}

// BruteForceBinary exhaustively solves the same problem for n ≤ 20; it is
// the test oracle for SolveBinary.
func BruteForceBinary(costs []float64, minOnes, maxOnes int) ([]int, float64, error) {
	n := len(costs)
	if n == 0 || n > 20 {
		return nil, 0, fmt.Errorf("%w: brute force supports 1..20 vars, got %d", ErrMalformed, n)
	}
	if maxOnes > n {
		maxOnes = n
	}
	bestObj := math.Inf(1)
	var best []int
	for mask := 0; mask < 1<<n; mask++ {
		ones := 0
		var obj float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				ones++
				obj += costs[i]
			}
		}
		if ones < minOnes || ones > maxOnes {
			continue
		}
		if obj < bestObj {
			bestObj = obj
			best = make([]int, n)
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					best[i] = 1
				}
			}
		}
	}
	if best == nil {
		return nil, 0, ErrInfeasible
	}
	return best, bestObj, nil
}
