package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func approxEq(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSolveSimpleLE(t *testing.T) {
	// min -x - y  s.t. x + y <= 4, x <= 3, y <= 2  → x=3, y=1? No:
	// maximize x+y with x<=3, y<=2, x+y<=4 → best 4 (e.g. x=2,y=2 or x=3,y=1).
	p := &Problem{
		Objective: []float64{-1, -1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: LE, RHS: 4},
		},
		Upper: []float64{3, 2},
	}
	x, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(obj, -4) {
		t.Fatalf("obj = %v, want -4 (x=%v)", obj, x)
	}
	if !approxEq(x[0]+x[1], 4) {
		t.Fatalf("x = %v should sum to 4", x)
	}
}

func TestSolveWithGEAndEQ(t *testing.T) {
	// min x + 2y  s.t. x + y = 3, x >= 1 → x=3, y=0? But x>=1 binds only
	// below; optimum is x=3,y=0 with obj 3.
	p := &Problem{
		Objective: []float64{1, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: EQ, RHS: 3},
			{Coeffs: []float64{1, 0}, Op: GE, RHS: 1},
		},
	}
	x, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(obj, 3) || !approxEq(x[0], 3) || !approxEq(x[1], 0) {
		t.Fatalf("x = %v obj = %v, want x=[3 0] obj=3", x, obj)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := &Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Op: GE, RHS: 5},
			{Coeffs: []float64{1}, Op: LE, RHS: 2},
		},
	}
	if _, _, err := Solve(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := &Problem{
		Objective: []float64{-1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Op: GE, RHS: 0},
		},
	}
	if _, _, err := Solve(p); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("want ErrUnbounded, got %v", err)
	}
}

func TestSolveMalformed(t *testing.T) {
	if _, _, err := Solve(&Problem{}); !errors.Is(err, ErrMalformed) {
		t.Fatal("empty objective should be malformed")
	}
	p := &Problem{
		Objective:   []float64{1, 1},
		Constraints: []Constraint{{Coeffs: []float64{1}, Op: LE, RHS: 1}},
	}
	if _, _, err := Solve(p); !errors.Is(err, ErrMalformed) {
		t.Fatal("coeff length mismatch should be malformed")
	}
	p2 := &Problem{Objective: []float64{1}, Upper: []float64{-1}}
	if _, _, err := Solve(p2); !errors.Is(err, ErrMalformed) {
		t.Fatal("negative upper bound should be malformed")
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -2 (i.e. x >= 2).
	p := &Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{-1}, Op: LE, RHS: -2},
		},
	}
	x, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(x[0], 2) || !approxEq(obj, 2) {
		t.Fatalf("x = %v, obj = %v; want 2", x, obj)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// Classic degenerate LP; Bland's rule must not cycle.
	p := &Problem{
		Objective: []float64{-0.75, 150, -0.02, 6},
		Constraints: []Constraint{
			{Coeffs: []float64{0.25, -60, -0.04, 9}, Op: LE, RHS: 0},
			{Coeffs: []float64{0.5, -90, -0.02, 3}, Op: LE, RHS: 0},
			{Coeffs: []float64{0, 0, 1, 0}, Op: LE, RHS: 1},
		},
	}
	x, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(obj, -0.05) {
		t.Fatalf("Beale LP optimum = %v (x=%v), want -0.05", obj, x)
	}
}

func TestSolveBinaryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(10)
		costs := make([]float64, n)
		for i := range costs {
			costs[i] = rng.Float64()*10 - 5
		}
		minOnes := 2
		maxOnes := n
		got, err := SolveBinary(costs, minOnes, maxOnes)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		_, wantObj, err := BruteForceBinary(costs, minOnes, maxOnes)
		if err != nil {
			t.Fatalf("trial %d oracle: %v", trial, err)
		}
		// The LP relaxation of this problem is integral at vertices (it is a
		// cardinality-constrained selection), so relax+round+repair should be
		// exactly optimal.
		if !approxEq(got.Objective, wantObj) {
			t.Fatalf("trial %d: objective %v, oracle %v (costs=%v, x=%v)",
				trial, got.Objective, wantObj, costs, got.X)
		}
		ones := 0
		for _, v := range got.X {
			ones += v
		}
		if ones < minOnes || ones > maxOnes {
			t.Fatalf("trial %d: cardinality %d outside [%d,%d]", trial, ones, minOnes, maxOnes)
		}
	}
}

func TestSolveBinaryCardinalityRepair(t *testing.T) {
	// All costs positive → LP wants all zeros, but minOnes forces 2.
	costs := []float64{5, 1, 3, 2}
	res, err := SolveBinary(costs, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	ones := 0
	for _, v := range res.X {
		ones += v
	}
	if ones != 2 {
		t.Fatalf("ones = %d, want exactly 2 (cheapest feasible)", ones)
	}
	// The two cheapest costs are 1 and 2.
	if !approxEq(res.Objective, 3) {
		t.Fatalf("objective = %v, want 3", res.Objective)
	}
}

func TestSolveBinaryAllNegativeCosts(t *testing.T) {
	costs := []float64{-1, -2, -3}
	res, err := SolveBinary(costs, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(res.Objective, -6) {
		t.Fatalf("objective = %v, want -6 (pick everything)", res.Objective)
	}
}

func TestSolveBinaryValidation(t *testing.T) {
	if _, err := SolveBinary(nil, 0, 1); err == nil {
		t.Fatal("empty problem should fail")
	}
	if _, err := SolveBinary([]float64{1}, 2, 1); err == nil {
		t.Fatal("minOnes > maxOnes should fail")
	}
	// maxOnes beyond n is clamped, not an error.
	if _, err := SolveBinary([]float64{1, 2}, 0, 10); err != nil {
		t.Fatal(err)
	}
}

func TestBruteForceBinaryValidation(t *testing.T) {
	if _, _, err := BruteForceBinary(make([]float64, 25), 0, 5); err == nil {
		t.Fatal("oversized brute force should fail")
	}
	if _, _, err := BruteForceBinary([]float64{1}, 2, 1); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("impossible cardinality: %v", err)
	}
}

func TestConstraintOpString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Fatal("op strings wrong")
	}
	if ConstraintOp(99).String() != "?" {
		t.Fatal("unknown op should be ?")
	}
}

func TestSolveBinaryLargeInstance(t *testing.T) {
	// A paper-sized instance: ~60 key frames.
	rng := rand.New(rand.NewSource(7))
	costs := make([]float64, 60)
	for i := range costs {
		costs[i] = rng.Float64()*4 - 2
	}
	res, err := SolveBinary(costs, 2, 60)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal = sum of negative costs (or two smallest if <2 negatives).
	var want float64
	neg := 0
	for _, c := range costs {
		if c < 0 {
			want += c
			neg++
		}
	}
	if neg < 2 {
		t.Skip("unlucky seed")
	}
	if !approxEq(res.Objective, want) {
		t.Fatalf("objective = %v, want %v", res.Objective, want)
	}
}
