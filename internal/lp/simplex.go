// Package lp implements a dense two-phase Simplex solver for linear
// programs in the form
//
//	minimize    cᵀx
//	subject to  A x (≤ | = | ≥) b,   lo ≤ x ≤ hi
//
// plus the binary-integer-program relaxation-and-rounding procedure the
// paper uses for its key-frame selection problem (Section 3.3.2): relax
// x ∈ {0,1} to x ∈ [0,1], solve the LP with Simplex, and round at 0.5.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// ConstraintOp is the relational operator of one constraint row.
type ConstraintOp int

// Constraint operators.
const (
	LE ConstraintOp = iota // ≤
	GE                     // ≥
	EQ                     // =
)

func (op ConstraintOp) String() string {
	switch op {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return "?"
	}
}

// Constraint is one row: Coeffs·x op RHS.
type Constraint struct {
	Coeffs []float64
	Op     ConstraintOp
	RHS    float64
}

// Problem is a minimization LP over variables x[0..n) with box bounds
// [0, Upper[i]] (Upper may be +Inf).
type Problem struct {
	Objective   []float64
	Constraints []Constraint
	Upper       []float64 // nil means all +Inf
}

// Solver failure modes.
var (
	ErrInfeasible = errors.New("lp: problem is infeasible")
	ErrUnbounded  = errors.New("lp: problem is unbounded")
	ErrMalformed  = errors.New("lp: malformed problem")
)

const (
	tol      = 1e-9
	maxIters = 50000
)

// Solve minimizes the problem and returns the optimal x and objective
// value. It converts the problem to standard form (adding slack, surplus
// and upper-bound rows), runs phase 1 to find a basic feasible solution and
// phase 2 to optimize.
func Solve(p *Problem) (x []float64, obj float64, err error) {
	n := len(p.Objective)
	if n == 0 {
		return nil, 0, fmt.Errorf("%w: empty objective", ErrMalformed)
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) != n {
			return nil, 0, fmt.Errorf("%w: constraint %d has %d coeffs, want %d",
				ErrMalformed, i, len(c.Coeffs), n)
		}
	}
	if p.Upper != nil && len(p.Upper) != n {
		return nil, 0, fmt.Errorf("%w: upper bounds len %d, want %d", ErrMalformed, len(p.Upper), n)
	}

	// Assemble rows: user constraints plus upper-bound rows x_i ≤ u_i.
	rows := make([]Constraint, 0, len(p.Constraints)+n)
	rows = append(rows, p.Constraints...)
	if p.Upper != nil {
		for i, u := range p.Upper {
			if math.IsInf(u, 1) {
				continue
			}
			if u < 0 {
				return nil, 0, fmt.Errorf("%w: negative upper bound %v on x%d", ErrMalformed, u, i)
			}
			coeffs := make([]float64, n)
			coeffs[i] = 1
			rows = append(rows, Constraint{Coeffs: coeffs, Op: LE, RHS: u})
		}
	}

	t := newTableau(p.Objective, rows)
	if err := t.phase1(); err != nil {
		return nil, 0, err
	}
	if err := t.phase2(); err != nil {
		return nil, 0, err
	}
	x = t.solution(n)
	for i := range p.Objective {
		obj += p.Objective[i] * x[i]
	}
	return x, obj, nil
}

// tableau is a standard-form Simplex tableau with slack and artificial
// variables. Layout of columns: [structural | slack/surplus | artificial | rhs].
type tableau struct {
	m, n      int // constraint rows, structural vars
	cols      int // total variable columns (excl. rhs)
	a         [][]float64
	basis     []int
	objective []float64
	artStart  int
	numArt    int
}

func newTableau(objective []float64, rows []Constraint) *tableau {
	m := len(rows)
	n := len(objective)

	// Count slack (one per LE/GE) and artificial (GE/EQ, and LE with
	// negative rhs handled by flipping) columns.
	type rowInfo struct {
		coeffs []float64
		op     ConstraintOp
		rhs    float64
	}
	infos := make([]rowInfo, m)
	for i, c := range rows {
		coeffs := append([]float64(nil), c.Coeffs...)
		op := c.Op
		rhs := c.RHS
		if rhs < 0 { // normalize to non-negative rhs
			for j := range coeffs {
				coeffs[j] = -coeffs[j]
			}
			rhs = -rhs
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		infos[i] = rowInfo{coeffs, op, rhs}
	}

	numSlack := 0
	numArt := 0
	for _, info := range infos {
		switch info.op {
		case LE:
			numSlack++
		case GE:
			numSlack++
			numArt++
		case EQ:
			numArt++
		}
	}

	cols := n + numSlack + numArt
	t := &tableau{
		m: m, n: n, cols: cols,
		a:         make([][]float64, m),
		basis:     make([]int, m),
		objective: objective,
		artStart:  n + numSlack,
		numArt:    numArt,
	}

	slack := n
	art := t.artStart
	for i, info := range infos {
		row := make([]float64, cols+1)
		copy(row, info.coeffs)
		row[cols] = info.rhs
		switch info.op {
		case LE:
			row[slack] = 1
			t.basis[i] = slack
			slack++
		case GE:
			row[slack] = -1
			slack++
			row[art] = 1
			t.basis[i] = art
			art++
		case EQ:
			row[art] = 1
			t.basis[i] = art
			art++
		}
		t.a[i] = row
	}
	return t
}

// pivot performs a standard pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	p := t.a[row][col]
	for j := range t.a[row] {
		t.a[row][j] /= p
	}
	for i := range t.a {
		if i == row {
			continue
		}
		factor := t.a[i][col]
		if factor == 0 { //lint:allow floateq skipping exactly-zero rows is safe; near-zero rows must still eliminate
			continue
		}
		for j := range t.a[i] {
			t.a[i][j] -= factor * t.a[row][j]
		}
	}
	t.basis[row] = col
}

// simplexLoop runs the simplex method with cost vector c over the current
// tableau (Bland's rule for anti-cycling).
func (t *tableau) simplexLoop(c []float64) error {
	for iter := 0; iter < maxIters; iter++ {
		// Reduced costs: r_j = c_j − c_Bᵀ B⁻¹ A_j. Since the tableau keeps
		// B⁻¹A explicitly, compute z_j = Σ_i c_basis[i]·a[i][j].
		entering := -1
		for j := 0; j < t.cols; j++ {
			var z float64
			for i := 0; i < t.m; i++ {
				cb := c[t.basis[i]]
				if cb != 0 { //lint:allow floateq exactly-zero coefficients contribute nothing; pure sparsity skip
					z += cb * t.a[i][j]
				}
			}
			if c[j]-z < -tol {
				// Bland's rule: the lowest-index improving column enters.
				entering = j
				break
			}
		}
		if entering == -1 {
			return nil // optimal
		}
		// Ratio test.
		leaving := -1
		minRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][entering] > tol {
				ratio := t.a[i][t.cols] / t.a[i][entering]
				if ratio < minRatio-tol ||
					(math.Abs(ratio-minRatio) <= tol && (leaving == -1 || t.basis[i] < t.basis[leaving])) {
					minRatio = ratio
					leaving = i
				}
			}
		}
		if leaving == -1 {
			return ErrUnbounded
		}
		t.pivot(leaving, entering)
	}
	return fmt.Errorf("lp: simplex did not converge in %d iterations", maxIters)
}

// phase1 minimizes the sum of artificial variables to find a basic feasible
// solution.
func (t *tableau) phase1() error {
	if t.numArt == 0 {
		return nil
	}
	c := make([]float64, t.cols)
	for j := t.artStart; j < t.cols; j++ {
		c[j] = 1
	}
	if err := t.simplexLoop(c); err != nil {
		if errors.Is(err, ErrUnbounded) {
			return ErrInfeasible // phase-1 objective is bounded below by 0
		}
		return err
	}
	// Infeasible if any artificial variable remains positive.
	var artSum float64
	for i := 0; i < t.m; i++ {
		if t.basis[i] >= t.artStart {
			artSum += t.a[i][t.cols]
		}
	}
	if artSum > 1e-6 {
		return ErrInfeasible
	}
	// Drive remaining artificial variables out of the basis when possible.
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.a[i][j]) > tol {
				t.pivot(i, j)
				break
			}
		}
	}
	return nil
}

// phase2 optimizes the real objective; artificial columns are frozen by
// assigning them prohibitive cost.
func (t *tableau) phase2() error {
	c := make([]float64, t.cols)
	copy(c, t.objective)
	for j := t.artStart; j < t.cols; j++ {
		c[j] = 1e18 // effectively forbid re-entering
	}
	return t.simplexLoop(c)
}

// solution extracts the first n structural variable values.
func (t *tableau) solution(n int) []float64 {
	x := make([]float64, n)
	for i, b := range t.basis {
		if b < n {
			v := t.a[i][t.cols]
			if math.Abs(v) < tol {
				v = 0
			}
			x[b] = v
		}
	}
	return x
}
