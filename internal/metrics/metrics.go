// Package metrics implements the utility measures of the paper's
// evaluation: distinct-object retention (Figure 5 a/c/e), normalized
// trajectory deviation (Figure 5 b/d/f), and per-frame object-count series
// with their errors (Figures 12-13).
package metrics

import (
	"fmt"
	"math"

	"verro/internal/assign"
	"verro/internal/interp"
	"verro/internal/motio"
)

// pairDeviation returns the summed per-frame deviation of syn against orig
// over orig's frames (each frame contributes min(1, ‖P−P*‖/‖P‖); absent
// synthetic frames contribute 1) and the number of frames.
func pairDeviation(orig, syn *motio.Track) (total float64, frames int) {
	// Sorted frames, not the Boxes map directly: the float accumulation
	// below must run in a fixed order or the sum's low bits change per run.
	for _, k := range orig.Frames() {
		p, _ := orig.Center(k)
		frames++
		if syn == nil {
			total++
			continue
		}
		q, ok := syn.Center(k)
		if !ok {
			total++
			continue
		}
		denom := p.Norm()
		if denom < 1 {
			denom = 1
		}
		d := p.Dist(q) / denom
		if d > 1 {
			d = 1
		}
		total += d
	}
	return total, frames
}

// TrajectoryDeviation computes the paper's Section 6.2.2 deviation between
// the original tracks and the synthetic tracks:
//
//	(1/N) Σ_i Σ_k ‖P(O_i,F_k) − P(O_i,F*_k)‖ / ‖P(O_i,F_k)‖
//
// summed over frames where the original object is present (absent synthetic
// frames contribute a full deviation of 1) and normalized by the number of
// (object, frame) pairs. Because VERRO deliberately destroys the mapping
// between original and synthetic identities ("any object in the input can
// possibly generate any object in the output"), the original↔synthetic
// pairing is chosen by minimum-cost assignment: the deviation measures
// whether the synthetic video *contains* a trajectory close to each
// original one, which is the utility the paper's noise-cancellation
// discussion appeals to.
func TrajectoryDeviation(original, synthetic *motio.TrackSet) float64 {
	nOrig := original.Tracks
	if len(nOrig) == 0 {
		return 0
	}
	nSyn := synthetic.Tracks

	totalFrames := 0
	for _, orig := range nOrig {
		totalFrames += orig.Len()
	}
	if totalFrames == 0 {
		return 0
	}
	if len(nSyn) == 0 {
		return 1
	}

	cost := make([][]float64, len(nOrig))
	for i, orig := range nOrig {
		cost[i] = make([]float64, len(nSyn))
		for j, syn := range nSyn {
			d, _ := pairDeviation(orig, syn)
			cost[i][j] = d
		}
	}
	rowToCol, _, err := assign.Solve(cost)
	if err != nil {
		// Cannot happen with finite costs; degrade to index matching.
		return IndexedTrajectoryDeviation(original, synthetic)
	}
	var total float64
	for i, orig := range nOrig {
		j := rowToCol[i]
		if j < 0 {
			total += float64(orig.Len()) // unmatched original: full deviation
			continue
		}
		total += cost[i][j]
	}
	return total / float64(totalFrames)
}

// IndexedTrajectoryDeviation is the strict variant of TrajectoryDeviation
// that pairs original track i with synthetic ID i+1 (the internal
// generation order). It is a harsher diagnostic: the adversary-visible
// synthetic identities are meaningless by design, so this measures how far
// each object's replacement wandered rather than scene-level utility.
func IndexedTrajectoryDeviation(original, synthetic *motio.TrackSet) float64 {
	pairs := 0
	var total float64
	for i, orig := range original.Tracks {
		syn := synthetic.ByID(i + 1)
		d, n := pairDeviation(orig, syn)
		total += d
		pairs += n
	}
	if pairs == 0 {
		return 0
	}
	return total / float64(pairs)
}

// SamplesDeviation measures the same deviation against the sparse Phase I
// coordinate assignments (one sample per picked key frame where the
// object's randomized bit was 1) — the "before Phase II" curve of
// Figure 5.
func SamplesDeviation(original *motio.TrackSet, assigned [][]interp.Sample) float64 {
	pairs := 0
	var total float64
	for i, orig := range original.Tracks {
		var samples []interp.Sample
		if i < len(assigned) {
			samples = assigned[i]
		}
		byFrame := map[int]interp.Sample{}
		for _, s := range samples {
			byFrame[s.Frame] = s
		}
		// Sorted frames for the same bit-determinism reason as pairDeviation.
		for _, k := range orig.Frames() {
			p, _ := orig.Center(k)
			pairs++
			s, ok := byFrame[k]
			if !ok {
				total += 1
				continue
			}
			denom := p.Norm()
			if denom < 1 {
				denom = 1
			}
			d := p.Dist(s.Pos) / denom
			if d > 1 {
				d = 1
			}
			total += d
		}
	}
	if pairs == 0 {
		return 0
	}
	return total / float64(pairs)
}

// Retention summarizes distinct-object survival through the pipeline.
type Retention struct {
	Original   int // objects in the input video
	KeyFrames  int // objects present in at least one key frame
	Optimized  int // objects present in at least one picked key frame
	Randomized int // objects with non-empty randomized vectors
}

func (r Retention) String() string {
	return fmt.Sprintf("objects: %d → keyframes %d → opt %d → rr %d",
		r.Original, r.KeyFrames, r.Optimized, r.Randomized)
}

// CountMAE returns the mean absolute error between two per-frame count
// series (padded with zeros to the longer length) — the aggregate-utility
// measure behind Figures 12-13.
func CountMAE(a, b []int) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		av, bv := 0, 0
		if i < len(a) {
			av = a[i]
		}
		if i < len(b) {
			bv = b[i]
		}
		sum += math.Abs(float64(av - bv))
	}
	return sum / float64(n)
}

// CountCorrelation returns the Pearson correlation of two equal-length
// count series; 0 when undefined (constant series).
func CountCorrelation(a, b []int) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	var ma, mb float64
	for i := 0; i < n; i++ {
		ma += float64(a[i])
		mb += float64(b[i])
	}
	ma /= float64(n)
	mb /= float64(n)
	var cov, va, vb float64
	for i := 0; i < n; i++ {
		da := float64(a[i]) - ma
		db := float64(b[i]) - mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb) //lint:allow divzero guard above proves va,vb != 0 and squares are nonnegative, so the product's root is positive (relational fact outside the interval domain)
}
