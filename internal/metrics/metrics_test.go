package metrics

import (
	"math"
	"testing"

	"verro/internal/geom"
	"verro/internal/interp"
	"verro/internal/motio"
)

func trackWithPath(id int, start int, centers []geom.Vec) *motio.Track {
	t := motio.NewTrack(id, "pedestrian")
	for i, c := range centers {
		t.Set(start+i, geom.CenteredRect(c.Round(), 4, 8))
	}
	return t
}

func TestTrajectoryDeviationIdenticalTracks(t *testing.T) {
	orig := motio.NewTrackSet()
	syn := motio.NewTrackSet()
	path := []geom.Vec{{X: 10, Y: 10}, {X: 12, Y: 10}, {X: 14, Y: 10}}
	orig.Add(trackWithPath(1, 0, path))
	syn.Add(trackWithPath(1, 0, path)) // synthetic ID = orig index + 1 = 1
	if d := TrajectoryDeviation(orig, syn); d != 0 {
		t.Fatalf("identical tracks deviation = %v", d)
	}
}

func TestTrajectoryDeviationMissingSynthetic(t *testing.T) {
	orig := motio.NewTrackSet()
	orig.Add(trackWithPath(1, 0, []geom.Vec{{X: 10, Y: 10}, {X: 12, Y: 10}}))
	syn := motio.NewTrackSet() // empty: object lost
	if d := TrajectoryDeviation(orig, syn); d != 1 {
		t.Fatalf("lost object deviation = %v, want 1", d)
	}
}

func TestTrajectoryDeviationPartial(t *testing.T) {
	orig := motio.NewTrackSet()
	orig.Add(trackWithPath(1, 0, []geom.Vec{{X: 100, Y: 0}, {X: 100, Y: 0}}))
	syn := motio.NewTrackSet()
	// Present in frame 0 at distance 10 (deviation 0.1), absent in frame 1
	// (deviation 1) → mean 0.55.
	syn.Add(trackWithPath(1, 0, []geom.Vec{{X: 110, Y: 0}}))
	got := TrajectoryDeviation(orig, syn)
	if math.Abs(got-0.55) > 1e-9 {
		t.Fatalf("deviation = %v, want 0.55", got)
	}
}

func TestTrajectoryDeviationCapsAtOne(t *testing.T) {
	orig := motio.NewTrackSet()
	orig.Add(trackWithPath(1, 0, []geom.Vec{{X: 5, Y: 0}}))
	syn := motio.NewTrackSet()
	syn.Add(trackWithPath(1, 0, []geom.Vec{{X: 500, Y: 400}}))
	if d := TrajectoryDeviation(orig, syn); d != 1 {
		t.Fatalf("deviation should cap at 1: %v", d)
	}
}

func TestTrajectoryDeviationEmpty(t *testing.T) {
	if d := TrajectoryDeviation(motio.NewTrackSet(), motio.NewTrackSet()); d != 0 {
		t.Fatalf("empty sets deviation = %v", d)
	}
}

func TestSamplesDeviation(t *testing.T) {
	orig := motio.NewTrackSet()
	orig.Add(trackWithPath(1, 0, []geom.Vec{
		{X: 100, Y: 0}, {X: 102, Y: 0}, {X: 104, Y: 0}, {X: 106, Y: 0},
	}))
	// One exact sample at frame 0, nothing elsewhere → (0 + 1 + 1 + 1)/4.
	assigned := [][]interp.Sample{
		{{Frame: 0, Pos: geom.V(100, 0)}},
	}
	got := SamplesDeviation(orig, assigned)
	if math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("samples deviation = %v, want 0.75", got)
	}
	// No samples at all → 1.
	if d := SamplesDeviation(orig, [][]interp.Sample{nil}); d != 1 {
		t.Fatalf("no-sample deviation = %v", d)
	}
	// Missing assignment slot behaves like no samples.
	if d := SamplesDeviation(orig, nil); d != 1 {
		t.Fatalf("nil assigned deviation = %v", d)
	}
}

func TestCountMAE(t *testing.T) {
	if got := CountMAE([]int{1, 2, 3}, []int{1, 2, 3}); got != 0 {
		t.Fatalf("identical MAE = %v", got)
	}
	if got := CountMAE([]int{0, 0}, []int{2, 4}); got != 3 {
		t.Fatalf("MAE = %v, want 3", got)
	}
	// Length mismatch pads with zeros.
	if got := CountMAE([]int{1}, []int{1, 4}); got != 2 {
		t.Fatalf("padded MAE = %v, want 2", got)
	}
	if got := CountMAE(nil, nil); got != 0 {
		t.Fatalf("empty MAE = %v", got)
	}
}

func TestCountCorrelation(t *testing.T) {
	a := []int{1, 2, 3, 4}
	if got := CountCorrelation(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self correlation = %v", got)
	}
	b := []int{4, 3, 2, 1}
	if got := CountCorrelation(a, b); math.Abs(got+1) > 1e-12 {
		t.Fatalf("anti correlation = %v", got)
	}
	if got := CountCorrelation(a, []int{5, 5, 5, 5}); got != 0 {
		t.Fatalf("constant series correlation = %v", got)
	}
	if got := CountCorrelation(nil, nil); got != 0 {
		t.Fatalf("empty correlation = %v", got)
	}
}

func TestRetentionString(t *testing.T) {
	r := Retention{Original: 23, KeyFrames: 19, Optimized: 17, Randomized: 16}
	s := r.String()
	if s == "" {
		t.Fatal("empty retention string")
	}
}
