// Package motio defines the object-annotation model shared by the scene
// generator, the detector/tracker and the sanitizer — an object is a track:
// a stable ID plus a bounding box in every frame where it is present — and
// provides MOT-challenge-style CSV serialization for ground truth,
// trajectories and the data series behind the paper's figures.
package motio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"verro/internal/geom"
)

// Track is one object across the video: a map from frame index to the
// object's bounding box in that frame.
type Track struct {
	ID    int
	Class string // "pedestrian", "vehicle", ...
	Boxes map[int]geom.Rect
}

// NewTrack returns an empty track for the given object ID.
func NewTrack(id int, class string) *Track {
	return &Track{ID: id, Class: class, Boxes: make(map[int]geom.Rect)}
}

// Set records the object's box in frame k.
func (t *Track) Set(k int, b geom.Rect) { t.Boxes[k] = b }

// Box returns the box in frame k and whether the object is present there.
func (t *Track) Box(k int) (geom.Rect, bool) {
	b, ok := t.Boxes[k]
	return b, ok
}

// Present reports whether the object appears in frame k.
func (t *Track) Present(k int) bool {
	_, ok := t.Boxes[k]
	return ok
}

// Frames returns the sorted frame indices in which the object appears.
func (t *Track) Frames() []int {
	out := make([]int, 0, len(t.Boxes))
	for k := range t.Boxes {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Span returns the first and last frame of the track; ok is false for an
// empty track.
func (t *Track) Span() (first, last int, ok bool) {
	frames := t.Frames()
	if len(frames) == 0 {
		return 0, 0, false
	}
	return frames[0], frames[len(frames)-1], true
}

// Center returns the box center in frame k.
func (t *Track) Center(k int) (geom.Vec, bool) {
	b, ok := t.Boxes[k]
	if !ok {
		return geom.Vec{}, false
	}
	return b.CenterVec(), true
}

// Trajectory returns the object's center positions over its sorted frames.
func (t *Track) Trajectory() (frames []int, centers geom.Polyline) {
	frames = t.Frames()
	centers = make(geom.Polyline, len(frames))
	for i, k := range frames {
		centers[i] = t.Boxes[k].CenterVec()
	}
	return frames, centers
}

// Len returns the number of frames the object appears in.
func (t *Track) Len() int { return len(t.Boxes) }

// Clone deep-copies the track.
func (t *Track) Clone() *Track {
	out := NewTrack(t.ID, t.Class)
	for k, b := range t.Boxes {
		out.Boxes[k] = b
	}
	return out
}

// TrackSet is a collection of tracks ordered by ID, the "set of n sensitive
// objects O1..On" of the paper.
type TrackSet struct {
	Tracks []*Track
}

// NewTrackSet returns an empty set.
func NewTrackSet() *TrackSet { return &TrackSet{} }

// Add appends a track.
func (s *TrackSet) Add(t *Track) { s.Tracks = append(s.Tracks, t) }

// Len returns the number of objects.
func (s *TrackSet) Len() int { return len(s.Tracks) }

// ByID returns the track with the given ID, or nil.
func (s *TrackSet) ByID(id int) *Track {
	for _, t := range s.Tracks {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// Sort orders the tracks by ID.
func (s *TrackSet) Sort() {
	sort.Slice(s.Tracks, func(i, j int) bool { return s.Tracks[i].ID < s.Tracks[j].ID })
}

// CountInFrame returns how many objects are present in frame k.
func (s *TrackSet) CountInFrame(k int) int {
	n := 0
	for _, t := range s.Tracks {
		if t.Present(k) {
			n++
		}
	}
	return n
}

// CountSeries returns the per-frame object counts for frames [0, m).
func (s *TrackSet) CountSeries(m int) []int {
	out := make([]int, m)
	for _, t := range s.Tracks {
		for k := range t.Boxes {
			if k >= 0 && k < m {
				out[k]++
			}
		}
	}
	return out
}

// MaxFrame returns the largest frame index used by any track, or -1.
func (s *TrackSet) MaxFrame() int {
	maxK := -1
	for _, t := range s.Tracks {
		for k := range t.Boxes {
			if k > maxK {
				maxK = k
			}
		}
	}
	return maxK
}

// Clone deep-copies the set.
func (s *TrackSet) Clone() *TrackSet {
	out := NewTrackSet()
	for _, t := range s.Tracks {
		out.Add(t.Clone())
	}
	return out
}

// WriteCSV serializes the set in MOT-challenge style:
// frame,id,class,x,y,w,h — one row per (object, frame), sorted.
func (s *TrackSet) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "frame,id,class,x,y,w,h"); err != nil {
		return err
	}
	type row struct {
		frame, id int
		class     string
		b         geom.Rect
	}
	var rows []row
	for _, t := range s.Tracks {
		for k, b := range t.Boxes {
			rows = append(rows, row{k, t.ID, t.Class, b})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].frame != rows[j].frame {
			return rows[i].frame < rows[j].frame
		}
		return rows[i].id < rows[j].id
	})
	for _, r := range rows {
		_, err := fmt.Fprintf(bw, "%d,%d,%s,%d,%d,%d,%d\n",
			r.frame, r.id, r.class, r.b.Min.X, r.b.Min.Y, r.b.Dx(), r.b.Dy())
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a track-set CSV produced by WriteCSV.
func ReadCSV(r io.Reader) (*TrackSet, error) {
	set := NewTrackSet()
	byID := map[int]*Track{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if line == 1 || text == "" {
			continue // header
		}
		fields := strings.Split(text, ",")
		if len(fields) != 7 {
			return nil, fmt.Errorf("motio: line %d: want 7 fields, got %d", line, len(fields))
		}
		nums := make([]int, 0, 6)
		for i, f := range fields {
			if i == 2 {
				continue
			}
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("motio: line %d field %d: %v", line, i, err)
			}
			nums = append(nums, n)
		}
		frame, id := nums[0], nums[1]
		x, y, w, h := nums[2], nums[3], nums[4], nums[5]
		t, ok := byID[id]
		if !ok {
			t = NewTrack(id, fields[2])
			byID[id] = t
			set.Add(t)
		}
		t.Set(frame, geom.RectAt(x, y, w, h))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	set.Sort()
	return set, nil
}

// SaveCSV writes the set to a file, creating parent directories.
func (s *TrackSet) SaveCSV(path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCSV reads a track-set CSV from a file.
func LoadCSV(path string) (*TrackSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}
