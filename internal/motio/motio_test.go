package motio

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"verro/internal/geom"
)

func sampleSet() *TrackSet {
	s := NewTrackSet()
	t1 := NewTrack(1, "pedestrian")
	t1.Set(0, geom.RectAt(10, 10, 4, 8))
	t1.Set(1, geom.RectAt(12, 10, 4, 8))
	t1.Set(5, geom.RectAt(20, 10, 4, 8))
	t2 := NewTrack(2, "vehicle")
	t2.Set(1, geom.RectAt(50, 40, 16, 8))
	s.Add(t1)
	s.Add(t2)
	return s
}

func TestTrackBasics(t *testing.T) {
	s := sampleSet()
	tr := s.ByID(1)
	if tr == nil {
		t.Fatal("ByID(1) = nil")
	}
	if !tr.Present(0) || tr.Present(2) {
		t.Fatal("presence wrong")
	}
	if got := tr.Frames(); !reflect.DeepEqual(got, []int{0, 1, 5}) {
		t.Fatalf("Frames = %v", got)
	}
	first, last, ok := tr.Span()
	if !ok || first != 0 || last != 5 {
		t.Fatalf("Span = %d,%d,%t", first, last, ok)
	}
	if c, ok := tr.Center(0); !ok || c != geom.V(12, 14) {
		t.Fatalf("Center = %v,%t", c, ok)
	}
	if _, ok := tr.Center(99); ok {
		t.Fatal("Center of absent frame should be !ok")
	}
	frames, centers := tr.Trajectory()
	if len(frames) != 3 || len(centers) != 3 {
		t.Fatalf("Trajectory lengths %d,%d", len(frames), len(centers))
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if s.ByID(42) != nil {
		t.Fatal("missing ID should return nil")
	}
}

func TestEmptyTrackSpan(t *testing.T) {
	tr := NewTrack(7, "pedestrian")
	if _, _, ok := tr.Span(); ok {
		t.Fatal("empty track should have no span")
	}
}

func TestCountSeries(t *testing.T) {
	s := sampleSet()
	got := s.CountSeries(6)
	want := []int{1, 2, 0, 0, 0, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CountSeries = %v, want %v", got, want)
	}
	if s.CountInFrame(1) != 2 {
		t.Fatalf("CountInFrame(1) = %d", s.CountInFrame(1))
	}
	if s.MaxFrame() != 5 {
		t.Fatalf("MaxFrame = %d", s.MaxFrame())
	}
	if NewTrackSet().MaxFrame() != -1 {
		t.Fatal("empty set MaxFrame should be -1")
	}
}

func TestCloneDeep(t *testing.T) {
	s := sampleSet()
	c := s.Clone()
	c.ByID(1).Set(0, geom.RectAt(0, 0, 1, 1))
	if b, _ := s.ByID(1).Box(0); b == geom.RectAt(0, 0, 1, 1) {
		t.Fatal("clone shares box maps")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := sampleSet()
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != s.Len() {
		t.Fatalf("Len = %d, want %d", back.Len(), s.Len())
	}
	for _, orig := range s.Tracks {
		got := back.ByID(orig.ID)
		if got == nil {
			t.Fatalf("missing track %d", orig.ID)
		}
		if got.Class != orig.Class {
			t.Fatalf("class %q != %q", got.Class, orig.Class)
		}
		if !reflect.DeepEqual(got.Boxes, orig.Boxes) {
			t.Fatalf("boxes mismatch for %d: %v vs %v", orig.ID, got.Boxes, orig.Boxes)
		}
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	s := sampleSet()
	path := t.TempDir() + "/gt/tracks.csv"
	if err := s.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("Len = %d", back.Len())
	}
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	cases := []string{
		"frame,id,class,x,y,w,h\n1,2,ped,3,4\n",     // too few fields
		"frame,id,class,x,y,w,h\na,2,ped,3,4,5,6\n", // non-numeric
		"frame,id,class,x,y,w,h\n1,2,ped,3,4,x,6\n", // non-numeric size
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("ReadCSV(%q) should fail", c)
		}
	}
}

func TestSeriesTableRoundTrip(t *testing.T) {
	tab := NewSeriesTable("f", []float64{0.1, 0.5, 0.9})
	if err := tab.AddColumn("original", []float64{23, 23, 23}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("rr", []float64{17, 16, 15}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSeriesCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.XName != "f" || !reflect.DeepEqual(back.X, tab.X) {
		t.Fatalf("x mismatch: %v", back.X)
	}
	if len(back.Cols) != 2 || back.Cols[1].Name != "rr" {
		t.Fatalf("cols mismatch: %+v", back.Cols)
	}
	if !reflect.DeepEqual(back.Cols[0].Samples, tab.Cols[0].Samples) {
		t.Fatal("sample mismatch")
	}
}

func TestSeriesTableValidation(t *testing.T) {
	tab := NewSeriesTable("x", []float64{1, 2})
	if err := tab.AddColumn("bad", []float64{1}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if len(tab.Cols) != 0 {
		t.Fatal("failed AddColumn must not append the column")
	}
}

func TestSeriesSaveCSV(t *testing.T) {
	tab := NewSeriesTable("frame", []float64{0, 1})
	if err := tab.AddColumn("count", []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/series/fig.csv"
	if err := tab.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	f, err := LoadCSVSeries(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.X) != 2 {
		t.Fatalf("X = %v", f.X)
	}
}

func TestIntsToFloats(t *testing.T) {
	got := IntsToFloats([]int{1, 2, 3})
	if !reflect.DeepEqual(got, []float64{1, 2, 3}) {
		t.Fatalf("IntsToFloats = %v", got)
	}
}
