package motio

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"verro/internal/geom"
)

// TestCSVRoundTripProperty: any randomly generated track set survives CSV
// serialization bit-exactly.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewTrackSet()
		nTracks := rng.Intn(6)
		for id := 1; id <= nTracks; id++ {
			class := "pedestrian"
			if rng.Intn(2) == 0 {
				class = "vehicle"
			}
			tr := NewTrack(id, class)
			for j := 0; j < rng.Intn(8); j++ {
				tr.Set(rng.Intn(50), geom.RectAt(rng.Intn(100), rng.Intn(100), 1+rng.Intn(20), 1+rng.Intn(20)))
			}
			s.Add(tr)
		}
		var buf bytes.Buffer
		if err := s.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		// Tracks with no boxes are legitimately dropped by the row format.
		for _, orig := range s.Tracks {
			if orig.Len() == 0 {
				continue
			}
			got := back.ByID(orig.ID)
			if got == nil || got.Class != orig.Class || !reflect.DeepEqual(got.Boxes, orig.Boxes) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCountSeriesMatchesCountInFrame: the batched series always agrees
// with the per-frame query.
func TestCountSeriesMatchesCountInFrame(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewTrackSet()
		for id := 1; id <= 1+rng.Intn(5); id++ {
			tr := NewTrack(id, "pedestrian")
			for j := 0; j < rng.Intn(10); j++ {
				tr.Set(rng.Intn(20), geom.RectAt(0, 0, 2, 2))
			}
			s.Add(tr)
		}
		series := s.CountSeries(20)
		for k := 0; k < 20; k++ {
			if series[k] != s.CountInFrame(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSpanBracketsAllFrames: every frame of a track lies within its span.
func TestSpanBracketsAllFrames(t *testing.T) {
	f := func(frames []uint8) bool {
		tr := NewTrack(1, "pedestrian")
		for _, fr := range frames {
			tr.Set(int(fr), geom.RectAt(0, 0, 1, 1))
		}
		first, last, ok := tr.Span()
		if !ok {
			return len(frames) == 0
		}
		for k := range tr.Boxes {
			if k < first || k > last {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
