package motio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Series is a named column of float64 samples; SeriesTable groups aligned
// columns under an x-axis, which is how the figure harness materializes the
// paper's plots (Figure 5, 12, 13 and the trajectory figures 6-8).
type Series struct {
	Name    string
	Samples []float64
}

// SeriesTable is a set of aligned series over a common x column.
type SeriesTable struct {
	XName string
	X     []float64
	Cols  []Series
}

// NewSeriesTable returns a table with the given x axis.
func NewSeriesTable(xName string, x []float64) *SeriesTable {
	return &SeriesTable{XName: xName, X: x}
}

// AddColumn appends a column; its length must match the x axis.
func (t *SeriesTable) AddColumn(name string, samples []float64) error {
	if len(samples) != len(t.X) {
		return fmt.Errorf("motio: column %q has %d samples, x has %d", name, len(samples), len(t.X))
	}
	t.Cols = append(t.Cols, Series{Name: name, Samples: samples})
	return nil
}

// WriteCSV serializes the table with a header row.
func (t *SeriesTable) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	headers := []string{t.XName}
	for _, c := range t.Cols {
		headers = append(headers, c.Name)
	}
	if _, err := fmt.Fprintln(bw, strings.Join(headers, ",")); err != nil {
		return err
	}
	for i := range t.X {
		row := []string{formatFloat(t.X[i])}
		for _, c := range t.Cols {
			row = append(row, formatFloat(c.Samples[i]))
		}
		if _, err := fmt.Fprintln(bw, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveCSV writes the table to a file, creating parent directories.
func (t *SeriesTable) SaveCSV(path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSeriesCSV parses a table written by WriteCSV.
func ReadSeriesCSV(r io.Reader) (*SeriesTable, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("motio: empty series csv")
	}
	headers := strings.Split(strings.TrimSpace(sc.Text()), ",")
	if len(headers) == 0 {
		return nil, fmt.Errorf("motio: missing header")
	}
	t := NewSeriesTable(headers[0], nil)
	cols := make([][]float64, len(headers)-1)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != len(headers) {
			return nil, fmt.Errorf("motio: line %d: %d fields, want %d", line, len(fields), len(headers))
		}
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("motio: line %d: %v", line, err)
			}
			if i == 0 {
				t.X = append(t.X, v)
			} else {
				cols[i-1] = append(cols[i-1], v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i, name := range headers[1:] {
		t.Cols = append(t.Cols, Series{Name: name, Samples: cols[i]})
	}
	return t, nil
}

// LoadCSVSeries reads a series table from a file.
func LoadCSVSeries(path string) (*SeriesTable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSeriesCSV(f)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 10, 64)
}

// IntsToFloats converts an int slice to float64 for series columns.
func IntsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
