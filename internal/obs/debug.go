package obs

import (
	"expvar"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"sync"

	"verro/internal/par"
)

var debugOnce sync.Once

// ServeDebug starts the opt-in diagnostics endpoint on addr in a background
// goroutine: net/http/pprof profiles plus expvar, including a live
// "verro.pool" variable exposing the default worker pool's dispatch and
// busy-time gauges. It backs the CLIs' -pprof flag and is a no-op on every
// call after the first. A listen failure is reported to stderr rather than
// aborting the run — diagnostics must never take the pipeline down.
func ServeDebug(addr string) {
	debugOnce.Do(func() {
		expvar.Publish("verro.pool", expvar.Func(func() any {
			s := par.DefaultStats()
			busy := make([]int64, len(s.Busy))
			for i, d := range s.Busy {
				busy[i] = int64(d)
			}
			return map[string]any{
				"workers":       s.Workers,
				"calls":         s.Calls,
				"chunks":        s.Chunks,
				"busy_ns":       busy,
				"busy_total_ns": int64(s.BusyTotal()),
			}
		}))
		go func() {
			if err := http.ListenAndServe(addr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "obs: debug server on %s: %v\n", addr, err)
			}
		}()
	})
}
