package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"sync"
	"time"

	"verro/internal/par"
)

var debugOnce sync.Once

// NewServer returns an http.Server hardened for long-lived listeners: a
// ReadHeaderTimeout bounds how long a client may dribble request headers
// (the slowloris hold-open), and an IdleTimeout reclaims abandoned
// keep-alive connections. No WriteTimeout is set deliberately — the pprof
// profile endpoints and verrod's SSE event streams hold their responses
// open for minutes by design, and a write deadline would sever them
// mid-stream. Both the -pprof diagnostics endpoint and the verrod job
// server are built on this constructor so the hardening cannot drift.
func NewServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// ServeDebug starts the opt-in diagnostics endpoint on addr in a background
// goroutine: net/http/pprof profiles plus expvar, including a live
// "verro.pool" variable exposing the default worker pool's dispatch and
// busy-time gauges. It backs the CLIs' -pprof flag and is a no-op on every
// call after the first. The listener is opened synchronously so an
// unbindable address surfaces as the returned error instead of vanishing
// inside the serving goroutine; errors from the serving loop itself (after
// a successful bind) are still reported to stderr rather than aborting the
// run — established diagnostics must never take the pipeline down.
func ServeDebug(addr string) error {
	var err error
	debugOnce.Do(func() {
		expvar.Publish("verro.pool", expvar.Func(func() any {
			s := par.DefaultStats()
			busy := make([]int64, len(s.Busy))
			for i, d := range s.Busy {
				busy[i] = int64(d)
			}
			return map[string]any{
				"workers":       s.Workers,
				"calls":         s.Calls,
				"chunks":        s.Chunks,
				"busy_ns":       busy,
				"busy_total_ns": int64(s.BusyTotal()),
			}
		}))
		var ln net.Listener
		ln, err = net.Listen("tcp", addr)
		if err != nil {
			err = fmt.Errorf("obs: debug listener on %s: %w", addr, err)
			return
		}
		srv := NewServer(addr, nil) // nil handler: the default mux carries pprof+expvar
		go func() {
			if serr := srv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "obs: debug server on %s: %v\n", addr, serr)
			}
		}()
	})
	return err
}
