// Package obs is VERRO's stdlib-only observability layer: a span/timer API
// with nestable stages, monotonic per-stage counters, and worker-pool
// utilization gauges sampled from internal/par. It exists so a production
// serving deployment can see where a sanitization run spends its time and
// whether the pool is saturated, without perturbing the seeded outputs the
// experiment harness depends on.
//
// The design rule is nil-safety: every method on a nil *Trace or nil *Span
// is a no-op, so instrumented code never branches on "is tracing enabled" —
// disabled tracing is a nil pointer check per call site and costs nothing.
// Spans are created and ended on the coordinating goroutine; Add may be
// called from pool workers, but hot loops should batch increments (one Add
// per row/patch/frame, never per pixel) since Add takes the span lock.
//
// Nothing in this package touches randomness: counters read already-computed
// data and spans read the wall clock, so a traced run is bit-identical to an
// untraced one at any worker count (proved by TestTraceEquivalence).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"verro/internal/par"
)

// Canonical counter names. Stages may add ad-hoc counters; these are the
// ones the trace schema in DESIGN.md documents and the CLIs report.
const (
	// CFramesDetected counts frames run through a detector.
	CFramesDetected = "frames_detected"
	// CDetections counts detector hits surviving NMS.
	CDetections = "detections"
	// CWindowEvals counts sliding-window SVM evaluations (HOG+SVM only).
	CWindowEvals = "window_evals"
	// CFramesTracked counts frames consumed by the tracker.
	CFramesTracked = "frames_tracked"
	// CTracksConfirmed counts confirmed tracker identities.
	CTracksConfirmed = "tracks_confirmed"
	// CKeyFrames counts key frames extracted by the Algorithm 2 segmenter.
	CKeyFrames = "key_frames"
	// CSegments counts video segments produced by the segmenter.
	CSegments = "segments"
	// CBGFramesSampled counts frames fed to the temporal background median.
	CBGFramesSampled = "bg_frames_sampled"
	// CPatchesInpainted counts Criminisi patch copies.
	CPatchesInpainted = "patches_inpainted"
	// CKeyFramesPicked counts key frames the Phase I optimizer gave budget.
	CKeyFramesPicked = "keyframes_picked"
	// CRRBitsFlipped counts presence bits the random response flipped.
	CRRBitsFlipped = "rr_bits_flipped"
	// CObjectsLost counts objects whose randomized vector came out empty.
	CObjectsLost = "objects_lost"
	// CObjectsRendered counts object placements drawn into synthetic frames.
	CObjectsRendered = "objects_rendered"
	// CFramesRendered counts synthetic frames produced by Phase II.
	CFramesRendered = "frames_rendered"
	// CWindows counts bounded-memory streaming windows driven through a
	// pass (analysis or render) of the windowed pipeline.
	CWindows = "windows"
	// CWindowFrames counts fresh (non-overlap) frames presented across all
	// streaming windows of a pass.
	CWindowFrames = "window_frames"
)

// Span is one timed stage of a run. Spans nest; a nil *Span is the disabled
// instrument and every method on it is a no-op.
type Span struct {
	name   string
	parent string
	start  time.Time

	mu       sync.Mutex
	end      time.Time
	counters map[string]int64
	children []*Span
	// obs is the trace's observer, inherited from the parent at Child time;
	// nil (the default) means no subscription and costs one nil check.
	obs *observer
}

// Child opens a sub-stage under s, started now. Returns nil (still safe to
// use) when s is nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, parent: s.name, start: time.Now()}
	s.mu.Lock()
	c.obs = s.obs
	s.children = append(s.children, c)
	s.mu.Unlock()
	c.obs.emit(Event{Kind: EventSpanStart, Span: name, Parent: s.name})
	return c
}

// End closes the span. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	first := s.end.IsZero()
	if first {
		s.end = time.Now()
	}
	dur := s.end.Sub(s.start)
	o := s.obs
	s.mu.Unlock()
	if first {
		o.emit(Event{Kind: EventSpanEnd, Span: s.name, Parent: s.parent, DurationNS: dur.Nanoseconds()})
	}
}

// Add increments the named monotonic counter by n. Safe from concurrent
// workers; batch increments in hot loops.
func (s *Span) Add(name string, n int64) {
	if s == nil || n == 0 {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = map[string]int64{}
	}
	s.counters[name] += n
	total := s.counters[name]
	o := s.obs
	s.mu.Unlock()
	o.emit(Event{Kind: EventCounter, Span: s.name, Parent: s.parent, Counter: name, Delta: n, Total: total})
}

// Counter reads a counter (0 when absent or s is nil).
func (s *Span) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[name]
}

// snapshot converts the span subtree to its report form. Unfinished spans
// report their duration up to now.
func (s *Span) snapshot(traceStart time.Time) *SpanReport {
	s.mu.Lock()
	end := s.end
	counters := make(map[string]int64, len(s.counters))
	for k, v := range s.counters {
		counters[k] = v
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	if end.IsZero() {
		end = time.Now()
	}
	rep := &SpanReport{
		Name:       s.name,
		StartNS:    s.start.Sub(traceStart).Nanoseconds(),
		DurationNS: end.Sub(s.start).Nanoseconds(),
	}
	if len(counters) > 0 {
		rep.Counters = counters
	}
	for _, c := range children {
		rep.Children = append(rep.Children, c.snapshot(traceStart))
	}
	return rep
}

// Trace owns one run's span tree and the worker pools whose utilization the
// report samples. A nil *Trace disables all instrumentation.
type Trace struct {
	name  string
	start time.Time
	root  *Span

	mu    sync.Mutex
	pools []*par.Pool
}

// NewTrace starts a trace whose root span opens immediately.
func NewTrace(name string) *Trace {
	now := time.Now()
	return &Trace{
		name:  name,
		start: now,
		root:  &Span{name: name, start: now},
	}
}

// Root returns the root span (nil for a nil trace), the parent under which
// pipeline stages open their stage spans.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// AttachPool registers a worker pool whose Stats the report will sample as
// utilization gauges. Pipeline entry points attach the scoped pool they
// create for the run; attaching is idempotent per pool.
func (t *Trace) AttachPool(p *par.Pool) {
	if t == nil || p == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, q := range t.pools {
		if q == p {
			return
		}
	}
	t.pools = append(t.pools, p)
}

// Finish closes the root span.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.root.End()
}

// Report is the machine-readable run report the -trace flag emits; the
// schema is documented in DESIGN.md §2c.
type Report struct {
	// Name labels the run (the trace name).
	Name string `json:"name"`
	// DurationNS is the root span's wall time.
	DurationNS int64 `json:"duration_ns"`
	// Span is the root of the stage tree.
	Span *SpanReport `json:"span"`
	// Counters aggregates every span's counters by name over the tree.
	Counters map[string]int64 `json:"counters"`
	// Pool carries the worker-pool utilization gauges, when any pool was
	// attached.
	Pool *PoolReport `json:"pool,omitempty"`
}

// SpanReport is one node of the span tree.
type SpanReport struct {
	Name string `json:"name"`
	// StartNS is the span's start offset from the trace start.
	StartNS    int64            `json:"start_ns"`
	DurationNS int64            `json:"duration_ns"`
	Counters   map[string]int64 `json:"counters,omitempty"`
	Children   []*SpanReport    `json:"children,omitempty"`
}

// Find returns the first span named name in a depth-first walk rooted at r,
// or nil.
func (r *SpanReport) Find(name string) *SpanReport {
	if r == nil {
		return nil
	}
	if r.Name == name {
		return r
	}
	for _, c := range r.Children {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// PoolReport is the worker-pool utilization gauge block: attached pools'
// stats merged (sizes maxed, counters summed, busy slices added slot-wise).
type PoolReport struct {
	Workers          int     `json:"workers"`
	Calls            int64   `json:"calls"`
	ChunksDispatched int64   `json:"chunks_dispatched"`
	BusyNSPerWorker  []int64 `json:"busy_ns_per_worker"`
	BusyTotalNS      int64   `json:"busy_total_ns"`
	// Utilization is busy time over workers × wall time, in [0, 1]-ish
	// (nested pools can push it above 1).
	Utilization float64 `json:"utilization"`
}

// Report snapshots the trace. Safe to call on a running trace (spans still
// open report their duration so far) and on a nil trace (returns nil).
func (t *Trace) Report() *Report {
	if t == nil {
		return nil
	}
	span := t.root.snapshot(t.start)
	rep := &Report{
		Name:       t.name,
		DurationNS: span.DurationNS,
		Span:       span,
		Counters:   map[string]int64{},
	}
	aggregate(span, rep.Counters)

	t.mu.Lock()
	pools := append([]*par.Pool(nil), t.pools...)
	t.mu.Unlock()
	if len(pools) > 0 {
		pr := &PoolReport{}
		for _, p := range pools {
			st := p.Stats()
			if st.Workers > pr.Workers {
				pr.Workers = st.Workers
			}
			pr.Calls += st.Calls
			pr.ChunksDispatched += st.Chunks
			for i, d := range st.Busy {
				for i >= len(pr.BusyNSPerWorker) {
					pr.BusyNSPerWorker = append(pr.BusyNSPerWorker, 0)
				}
				pr.BusyNSPerWorker[i] += d.Nanoseconds()
			}
		}
		for _, ns := range pr.BusyNSPerWorker {
			pr.BusyTotalNS += ns
		}
		if rep.DurationNS > 0 && pr.Workers > 0 {
			pr.Utilization = float64(pr.BusyTotalNS) / (float64(rep.DurationNS) * float64(pr.Workers))
		}
		rep.Pool = pr
	}
	return rep
}

func aggregate(s *SpanReport, into map[string]int64) {
	for k, v := range s.Counters {
		into[k] += v
	}
	for _, c := range s.Children {
		aggregate(c, into)
	}
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile finishes the trace and writes its report to path — the -trace
// flag implementation. No-op for a nil trace.
func (t *Trace) WriteFile(path string) error {
	if t == nil {
		return nil
	}
	t.Finish()
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	defer f.Close()
	if err := t.Report().WriteJSON(f); err != nil {
		return fmt.Errorf("obs: encode trace: %w", err)
	}
	return f.Close()
}

// Summary renders a compact per-stage table of the report (name, duration,
// counters sorted by name) for human eyes; the CLIs print it alongside the
// JSON file.
func (r *Report) Summary() string {
	if r == nil {
		return ""
	}
	var b []byte
	var walk func(s *SpanReport, depth int)
	walk = func(s *SpanReport, depth int) {
		for i := 0; i < depth; i++ {
			b = append(b, ' ', ' ')
		}
		b = append(b, fmt.Sprintf("%-12s %12v", s.Name, time.Duration(s.DurationNS).Round(time.Microsecond))...)
		names := make([]string, 0, len(s.Counters))
		for k := range s.Counters {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			b = append(b, fmt.Sprintf("  %s=%d", k, s.Counters[k])...)
		}
		b = append(b, '\n')
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	walk(r.Span, 0)
	if r.Pool != nil {
		b = append(b, fmt.Sprintf("pool: workers=%d calls=%d chunks=%d busy=%v utilization=%.2f\n",
			r.Pool.Workers, r.Pool.Calls, r.Pool.ChunksDispatched,
			time.Duration(r.Pool.BusyTotalNS).Round(time.Microsecond), r.Pool.Utilization)...)
	}
	return string(b)
}

// Runtime bundles the per-run execution resources — the scoped worker pool
// and the active trace span — that flow together through the pipeline
// stages. The zero Runtime is fully functional: default pool, no tracing.
type Runtime struct {
	Pool *par.Pool
	Span *Span
}

// Child returns a Runtime scoped to a child span of rt (same pool).
func (rt Runtime) Child(name string) Runtime {
	return Runtime{Pool: rt.Pool, Span: rt.Span.Child(name)}
}

// SpanSetter is implemented by components (detectors) whose construction
// site differs from the stage span they should report under; the stage
// opens its span and rebinds the component to it.
type SpanSetter interface {
	SetSpan(*Span)
}
