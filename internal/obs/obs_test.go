package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"verro/internal/par"
)

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	if tr.Root() != nil {
		t.Fatal("nil trace must have a nil root")
	}
	tr.AttachPool(par.NewPool(2))
	tr.Finish()
	if tr.Report() != nil {
		t.Fatal("nil trace must report nil")
	}
	if err := tr.WriteFile(t.TempDir() + "/x.json"); err != nil {
		t.Fatalf("nil WriteFile: %v", err)
	}

	var s *Span
	c := s.Child("x")
	if c != nil {
		t.Fatal("nil span Child must stay nil")
	}
	c.Add("n", 1)
	c.End()
	if c.Counter("n") != 0 {
		t.Fatal("nil span counter must read 0")
	}
}

func TestSpanTreeAndCounters(t *testing.T) {
	tr := NewTrace("run")
	a := tr.Root().Child("phase1")
	a.Add(CKeyFramesPicked, 3)
	a.Add(CKeyFramesPicked, 2)
	a.End()
	b := tr.Root().Child("phase2")
	inner := b.Child("render")
	inner.Add(CObjectsRendered, 7)
	inner.End()
	b.End()
	tr.Finish()

	rep := tr.Report()
	if rep.Span.Name != "run" || len(rep.Span.Children) != 2 {
		t.Fatalf("unexpected span tree: %+v", rep.Span)
	}
	if got := rep.Span.Find("phase1").Counters[CKeyFramesPicked]; got != 5 {
		t.Fatalf("phase1 %s = %d, want 5", CKeyFramesPicked, got)
	}
	if rep.Span.Find("render") == nil {
		t.Fatal("nested span not found")
	}
	if rep.Counters[CObjectsRendered] != 7 || rep.Counters[CKeyFramesPicked] != 5 {
		t.Fatalf("aggregated counters wrong: %v", rep.Counters)
	}
	if rep.DurationNS < 0 || rep.Span.Find("phase1").DurationNS < 0 {
		t.Fatal("negative durations")
	}
	if rep.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestConcurrentAdds(t *testing.T) {
	tr := NewTrace("run")
	s := tr.Root().Child("stage")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	if got := s.Counter("n"); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestPoolGauges(t *testing.T) {
	tr := NewTrace("run")
	p := par.NewPool(4)
	tr.AttachPool(p)
	tr.AttachPool(p) // idempotent
	p.For(64, 1, func(lo, hi int) {
		s := 0
		for i := lo; i < hi; i++ {
			s += i
		}
	})
	tr.Finish()
	rep := tr.Report()
	if rep.Pool == nil {
		t.Fatal("no pool block in report")
	}
	if rep.Pool.Workers != 4 {
		t.Errorf("pool workers = %d, want 4", rep.Pool.Workers)
	}
	if rep.Pool.Calls != 1 || rep.Pool.ChunksDispatched != 4 {
		t.Errorf("calls=%d chunks=%d, want 1/4 (pool attached twice must not double-count)",
			rep.Pool.Calls, rep.Pool.ChunksDispatched)
	}
	var sum int64
	for _, ns := range rep.Pool.BusyNSPerWorker {
		sum += ns
	}
	if sum != rep.Pool.BusyTotalNS {
		t.Errorf("busy total %d != per-worker sum %d", rep.Pool.BusyTotalNS, sum)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	tr := NewTrace("verro")
	tr.Root().Child("detect").Add(CFramesDetected, 10)
	tr.AttachPool(par.NewPool(2))
	tr.Finish()

	var buf bytes.Buffer
	if err := tr.Report().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if back.Name != "verro" || back.Span.Find("detect") == nil {
		t.Fatalf("round-trip lost data: %+v", back)
	}
	if back.Counters[CFramesDetected] != 10 {
		t.Fatalf("counters lost: %v", back.Counters)
	}
}

func TestRuntimeChild(t *testing.T) {
	var zero Runtime
	c := zero.Child("x")
	if c.Span != nil || c.Pool != nil {
		t.Fatal("zero Runtime child must stay disabled")
	}
	tr := NewTrace("run")
	rt := Runtime{Pool: par.NewPool(2), Span: tr.Root()}
	c = rt.Child("stage")
	if c.Pool != rt.Pool || c.Span == nil {
		t.Fatal("Runtime.Child must keep the pool and open a span")
	}
}
