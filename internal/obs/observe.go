package obs

import "sync/atomic"

// Event subscription: a Trace can stream its span openings/closings and
// counter increments to a single observer as they happen, which is what
// feeds verrod's per-job SSE progress streams. Subscription is orthogonal
// to the Report snapshot — the span tree keeps accumulating exactly as
// before, and a trace with no observer pays one nil check per event site.
//
// Observer callbacks run synchronously on whatever goroutine produced the
// event (counter increments may come from pool workers), outside the span
// lock. Observers must therefore be fast and must not call back into the
// span they were notified about; buffering and fan-out belong to the
// subscriber (internal/server keeps a per-job event log behind its own
// lock).

// Event kinds delivered to a trace observer.
const (
	// EventSpanStart reports a span opening (Span, Parent).
	EventSpanStart = "span_start"
	// EventSpanEnd reports a span closing (Span, Parent, DurationNS).
	EventSpanEnd = "span_end"
	// EventCounter reports a counter increment (Span, Counter, Delta, Total).
	EventCounter = "counter"
)

// Event is one observability occurrence in a subscribed trace. Seq is a
// per-trace monotonically increasing sequence number: an SSE consumer that
// orders events by Seq sees spans and counters in a consistent causal order
// even when workers race on counter increments.
type Event struct {
	Seq  int64  `json:"seq"`
	Kind string `json:"kind"`
	// Span names the span the event belongs to; Parent its parent span
	// (empty for the root).
	Span   string `json:"span"`
	Parent string `json:"parent,omitempty"`
	// Counter/Delta/Total describe an EventCounter increment.
	Counter string `json:"counter,omitempty"`
	Delta   int64  `json:"delta,omitempty"`
	Total   int64  `json:"total,omitempty"`
	// DurationNS is the closed span's wall time on EventSpanEnd.
	DurationNS int64 `json:"duration_ns,omitempty"`
}

// observer carries the subscription down the span tree: every child span
// created after Observe shares the trace's observer and sequence counter.
type observer struct {
	fn  func(Event)
	seq atomic.Int64
}

// emit stamps the next sequence number and delivers the event. Call sites
// hold no span lock here, so a slow observer can delay the pipeline but
// never deadlock it.
func (o *observer) emit(e Event) {
	if o == nil {
		return
	}
	e.Seq = o.seq.Add(1)
	o.fn(e)
}

// Observe subscribes fn to the trace's events. It must be called before the
// pipeline opens stage spans: only spans created after the call (and counter
// increments on them) are delivered; the root span itself is announced
// immediately as an EventSpanStart. A nil trace or nil fn is a no-op, and at
// most one observer is supported — a second call replaces the first for
// spans not yet created but not for existing ones.
func (t *Trace) Observe(fn func(Event)) {
	if t == nil || fn == nil {
		return
	}
	o := &observer{fn: fn}
	t.root.mu.Lock()
	t.root.obs = o
	t.root.mu.Unlock()
	o.emit(Event{Kind: EventSpanStart, Span: t.root.name})
}
