package obs

import (
	"net/http"
	"sync"
	"testing"
)

// TestObserveEvents checks the full event contract: the root announcement,
// span start/end ordering, counter deltas and totals, parent attribution,
// and strictly increasing sequence numbers.
func TestObserveEvents(t *testing.T) {
	tr := NewTrace("job")
	var mu sync.Mutex
	var events []Event
	tr.Observe(func(e Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})

	s := tr.Root().Child("phase2")
	w := s.Child("window@0")
	s.Add(CWindows, 1)
	s.Add(CWindows, 1)
	w.End()
	w.End() // double End must emit exactly one span_end
	s.End()
	tr.Finish()

	want := []Event{
		{Kind: EventSpanStart, Span: "job"},
		{Kind: EventSpanStart, Span: "phase2", Parent: "job"},
		{Kind: EventSpanStart, Span: "window@0", Parent: "phase2"},
		{Kind: EventCounter, Span: "phase2", Parent: "job", Counter: CWindows, Delta: 1, Total: 1},
		{Kind: EventCounter, Span: "phase2", Parent: "job", Counter: CWindows, Delta: 1, Total: 2},
		{Kind: EventSpanEnd, Span: "window@0", Parent: "phase2"},
		{Kind: EventSpanEnd, Span: "phase2", Parent: "job"},
		{Kind: EventSpanEnd, Span: "job"},
	}
	if len(events) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(events), len(want), events)
	}
	for i, e := range events {
		if int64(i+1) != e.Seq {
			t.Errorf("event %d has seq %d, want %d", i, e.Seq, i+1)
		}
		w := want[i]
		if e.Kind != w.Kind || e.Span != w.Span || e.Parent != w.Parent ||
			e.Counter != w.Counter || e.Delta != w.Delta || e.Total != w.Total {
			t.Errorf("event %d = %+v, want %+v", i, e, w)
		}
		if e.Kind == EventSpanEnd && e.DurationNS < 0 {
			t.Errorf("event %d has negative duration", i)
		}
	}
}

// TestObserveNilSafety: nil traces, nil callbacks and unobserved traces must
// all be inert.
func TestObserveNilSafety(t *testing.T) {
	var tr *Trace
	tr.Observe(func(Event) { t.Fatal("nil trace must not deliver events") })

	tr2 := NewTrace("x")
	tr2.Observe(nil)
	s := tr2.Root().Child("stage")
	s.Add("n", 1)
	s.End() // must not panic with a nil observer
}

// TestObserveConcurrentCounters: concurrent Adds from workers must deliver
// one event per increment with unique sequence numbers.
func TestObserveConcurrentCounters(t *testing.T) {
	tr := NewTrace("job")
	seen := make(map[int64]bool)
	var mu sync.Mutex
	count := 0
	tr.Observe(func(e Event) {
		mu.Lock()
		if seen[e.Seq] {
			t.Errorf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
		if e.Kind == EventCounter {
			count++
		}
		mu.Unlock()
	})
	s := tr.Root().Child("stage")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	if count != 8*200 {
		t.Fatalf("delivered %d counter events, want %d", count, 8*200)
	}
	if got := s.Counter("n"); got != 8*200 {
		t.Fatalf("counter = %d, want %d", got, 8*200)
	}
}

// TestNewServerHardening: the shared constructor must bound header reads
// (slowloris) while leaving writes unbounded for SSE/pprof streams.
func TestNewServerHardening(t *testing.T) {
	srv := NewServer("127.0.0.1:0", http.NewServeMux())
	if srv.ReadHeaderTimeout <= 0 {
		t.Fatal("ReadHeaderTimeout must be set")
	}
	if srv.IdleTimeout <= 0 {
		t.Fatal("IdleTimeout must be set")
	}
	if srv.WriteTimeout != 0 {
		t.Fatal("WriteTimeout must stay unset: SSE streams hold responses open")
	}
}

// TestServeDebugBadAddr: an unbindable address must surface synchronously.
// ServeDebug is once-per-process, so this test also pins the "first call
// wins" contract: the follow-up call is a no-op returning nil.
func TestServeDebugBadAddr(t *testing.T) {
	if err := ServeDebug("203.0.113.1:1"); err == nil { // TEST-NET-3, never bindable
		t.Fatal("want a listen error for an unbindable address")
	}
	if err := ServeDebug("127.0.0.1:0"); err != nil {
		t.Fatalf("second call must be a no-op, got %v", err)
	}
}
