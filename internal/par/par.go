// Package par is the deterministic worker pool under VERRO's hot
// computer-vision loops. Every parallel construct here is *scheduling-only*
// parallelism: work is sharded over contiguous index ranges, workers write
// disjoint outputs, and all randomness stays on the caller (the
// coordinator-draws-RNG rule of DESIGN.md), so the result of any converted
// loop is bit-identical whether it runs on one worker or many. That
// invariant is what lets the seeded experiment harness keep its
// reproducibility guarantees while the pipeline saturates the machine.
//
// Two entry points exist:
//
//   - the package-level For/Map, which size themselves from the process-wide
//     setting (SetWorkers, VERRO_WORKERS, GOMAXPROCS), and
//   - a scoped Pool handle (NewPool), which carries an explicit size through
//     a call tree so concurrent pipeline runs with different worker budgets
//     never touch — let alone clobber — process-global state.
//
// Every pool (including the implicit default one) keeps utilization
// statistics — For calls, chunks dispatched, cumulative busy time per
// worker slot — that the observability layer (internal/obs) samples into
// trace reports. Recording happens once per chunk, so the bookkeeping cost
// is invisible next to the chunk work itself.
//
// The process-wide pool size resolves in priority order:
//
//  1. the last SetWorkers call with n > 0 (tests, CLI flags),
//  2. the VERRO_WORKERS environment variable (CI forcing serial runs),
//  3. runtime.GOMAXPROCS(0).
package par

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// override holds the process-wide worker-count override; 0 means "auto".
var override atomic.Int64

func init() {
	if s := os.Getenv("VERRO_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			override.Store(int64(n))
		}
	}
}

// SetWorkers overrides the process-wide pool size and returns the previous
// override so callers can restore it (0 restores automatic sizing).
// Negative values are treated as 0. This is process state: it is meant for
// main() flag plumbing and test setup, NOT for scoping a worker count to
// one library call — concurrent callers doing a swap-and-restore dance
// clobber each other's setting and can restore the wrong value. Library
// code that needs a per-call size should create a Pool instead.
func SetWorkers(n int) (prev int) {
	if n < 0 {
		n = 0
	}
	return int(override.Swap(int64(n)))
}

// Workers reports the process-wide pool size: the SetWorkers/VERRO_WORKERS
// override when present, otherwise runtime.GOMAXPROCS.
func Workers() int {
	if n := override.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Pool is a scoped worker-pool handle: it fixes the worker count for every
// For/Map issued through it and accumulates utilization statistics. A nil
// *Pool is valid and means "the process-wide default pool" — callers can
// thread an optional pool without nil checks. Pools are safe for concurrent
// use.
type Pool struct {
	// workers is the fixed size; <= 0 resolves dynamically via Workers().
	workers int

	mu     sync.Mutex
	calls  int64
	chunks int64
	busy   []time.Duration
}

// defaultPool backs the package-level For/Map and any nil *Pool receiver.
// Its size is always resolved dynamically so SetWorkers/VERRO_WORKERS keep
// working for untraced call paths.
var defaultPool = &Pool{}

// NewPool returns a pool fixed at n workers; n <= 0 resolves the
// process-wide setting at each call, so NewPool(0) is a stats-isolated
// handle with default sizing.
func NewPool(n int) *Pool {
	if n < 0 {
		n = 0
	}
	return &Pool{workers: n}
}

// Workers reports the pool's worker count (the process-wide setting for
// nil or auto-sized pools).
func (p *Pool) Workers() int {
	if p == nil || p.workers <= 0 {
		return Workers()
	}
	return p.workers
}

// Stats is a snapshot of a pool's lifetime utilization counters.
type Stats struct {
	// Workers is the pool size at snapshot time.
	Workers int
	// Calls counts For/Map invocations (including serial fast paths).
	Calls int64
	// Chunks counts dispatched chunks; empty chunks are never dispatched.
	Chunks int64
	// Busy is the cumulative time each worker slot spent inside fn. Slot 0
	// also accumulates the serial fast path.
	Busy []time.Duration
}

// BusyTotal sums the per-worker busy time.
func (s Stats) BusyTotal() time.Duration {
	var t time.Duration
	for _, d := range s.Busy {
		t += d
	}
	return t
}

// Stats snapshots the pool's utilization counters (the default pool's for a
// nil receiver).
func (p *Pool) Stats() Stats {
	if p == nil {
		p = defaultPool
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Workers: p.Workers(),
		Calls:   p.calls,
		Chunks:  p.chunks,
		Busy:    append([]time.Duration(nil), p.busy...),
	}
}

// DefaultStats snapshots the default pool (the one behind the package-level
// For/Map) — exported so CLIs can surface it via expvar.
func DefaultStats() Stats { return defaultPool.Stats() }

// record accumulates one executed chunk on worker slot w.
func (p *Pool) record(w int, d time.Duration) {
	p.mu.Lock()
	p.chunks++
	for w >= len(p.busy) {
		p.busy = append(p.busy, 0)
	}
	p.busy[w] += d
	p.mu.Unlock()
}

func (p *Pool) addCall() {
	p.mu.Lock()
	p.calls++
	p.mu.Unlock()
}

// For runs fn over [0, n) split into contiguous chunks of at least grain
// indices, at most one chunk in flight per worker. fn(lo, hi) must touch
// only state derivable from its index range (shared inputs read-only,
// outputs disjoint per index); under that contract the aggregate effect is
// identical to fn(0, n). grain < 1 is treated as 1. Every dispatched chunk
// is non-empty: lo < hi <= n always holds inside fn. A panic inside fn is
// re-raised on the caller; when several chunks panic, the one covering the
// lowest index range wins, so failures are deterministic too.
func (p *Pool) For(n, grain int, fn func(lo, hi int)) {
	if p == nil {
		p = defaultPool
	}
	if n <= 0 {
		return
	}
	p.addCall()
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	workers := p.Workers()
	if chunks > workers {
		chunks = workers
	}
	if chunks > 1 {
		// Recompute the chunk count from the final chunk size: with
		// size = ceil(n/chunks), the first ceil(n/size) chunks already cover
		// [0, n), and any trailing chunk would start at lo >= n (e.g. n=10
		// over 8 workers gives size=2 and only 5 real chunks). Dispatching
		// those empty chunks used to call fn with an inverted range.
		size := (n + chunks - 1) / chunks
		chunks = (n + size - 1) / size //lint:allow divzero size = ceil(n/chunks) >= 1 because n >= 1 (relational fact outside the interval domain)
		if chunks > 1 {
			p.forChunks(n, size, chunks, fn)
			return
		}
	}
	start := time.Now()
	fn(0, n)
	p.record(0, time.Since(start))
}

// forChunks dispatches chunks [c*size, min((c+1)*size, n)) for c in
// [0, chunks) over chunks goroutines.
func (p *Pool) forChunks(n, size, chunks int, fn func(lo, hi int)) {
	type failure struct {
		chunk int
		value any
	}
	var (
		next  atomic.Int64
		wg    sync.WaitGroup
		mu    sync.Mutex
		first *failure
	)
	run := func(w, c int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if first == nil || c < first.chunk {
					first = &failure{chunk: c, value: r}
				}
				mu.Unlock()
			}
		}()
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		start := time.Now()
		fn(lo, hi)
		p.record(w, time.Since(start))
	}
	wg.Add(chunks)
	for w := 0; w < chunks; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				run(w, c)
			}
		}(w)
	}
	// The chunk-claim counter hands each goroutine exactly one chunk here
	// (chunks == goroutines), but the loop shape keeps the scheduler honest
	// if the two ever diverge.
	wg.Wait()
	if first != nil {
		panic(first.value) //lint:allow panicfree re-raises a worker goroutine's panic on the coordinator
	}
}

// For runs fn on the default pool; see (*Pool).For.
func For(n, grain int, fn func(lo, hi int)) {
	defaultPool.For(n, grain, fn)
}

// MapPool computes out[i] = fn(i) for i in [0, n) on pool p (nil = default
// pool) with the same sharding and determinism contract as For: fn must be
// pure with respect to shared state, and the gathered slice is
// index-ordered regardless of scheduling.
func MapPool[T any](p *Pool, n, grain int, fn func(i int) T) []T {
	out := make([]T, n)
	p.For(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = fn(i)
		}
	})
	return out
}

// Map runs MapPool on the default pool.
func Map[T any](n, grain int, fn func(i int) T) []T {
	return MapPool[T](nil, n, grain, fn)
}
