// Package par is the deterministic worker pool under VERRO's hot
// computer-vision loops. Every parallel construct here is *scheduling-only*
// parallelism: work is sharded over contiguous index ranges, workers write
// disjoint outputs, and all randomness stays on the caller (the
// coordinator-draws-RNG rule of DESIGN.md), so the result of any converted
// loop is bit-identical whether it runs on one worker or many. That
// invariant is what lets the seeded experiment harness keep its
// reproducibility guarantees while the pipeline saturates the machine.
//
// The pool size resolves in priority order:
//
//  1. the last SetWorkers call with n > 0 (tests, config plumbing),
//  2. the VERRO_WORKERS environment variable (CI forcing serial runs),
//  3. runtime.GOMAXPROCS(0).
package par

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// override holds the process-wide worker-count override; 0 means "auto".
var override atomic.Int64

func init() {
	if s := os.Getenv("VERRO_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			override.Store(int64(n))
		}
	}
}

// SetWorkers overrides the pool size for the whole process and returns the
// previous override so callers can restore it (0 restores automatic
// sizing). Negative values are treated as 0. The override affects only
// scheduling — converted loops produce identical output at any setting — so
// concurrent callers cannot corrupt results, only each other's throughput.
func SetWorkers(n int) (prev int) {
	if n < 0 {
		n = 0
	}
	return int(override.Swap(int64(n)))
}

// Workers reports the current pool size: the SetWorkers/VERRO_WORKERS
// override when present, otherwise runtime.GOMAXPROCS.
func Workers() int {
	if n := override.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn over [0, n) split into contiguous chunks of at least grain
// indices, at most one chunk in flight per worker. fn(lo, hi) must touch
// only state derivable from its index range (shared inputs read-only,
// outputs disjoint per index); under that contract the aggregate effect is
// identical to fn(0, n). grain < 1 is treated as 1. A panic inside fn is
// re-raised on the caller; when several chunks panic, the one covering the
// lowest index range wins, so failures are deterministic too.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	workers := Workers()
	if chunks > workers {
		chunks = workers
	}
	if chunks <= 1 {
		fn(0, n)
		return
	}
	size := (n + chunks - 1) / chunks

	type failure struct {
		chunk int
		value any
	}
	var (
		next  atomic.Int64
		wg    sync.WaitGroup
		mu    sync.Mutex
		first *failure
	)
	run := func(c int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if first == nil || c < first.chunk {
					first = &failure{chunk: c, value: r}
				}
				mu.Unlock()
			}
		}()
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	}
	wg.Add(chunks)
	for w := 0; w < chunks; w++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				run(c)
			}
		}()
	}
	// The chunk-claim counter hands each goroutine exactly one chunk here
	// (chunks == goroutines), but the loop shape keeps the scheduler honest
	// if the two ever diverge.
	wg.Wait()
	if first != nil {
		panic(first.value)
	}
}

// Map computes out[i] = fn(i) for i in [0, n) with the same sharding and
// determinism contract as For: fn must be pure with respect to shared state,
// and the gathered slice is index-ordered regardless of scheduling.
func Map[T any](n, grain int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = fn(i)
		}
	})
	return out
}
