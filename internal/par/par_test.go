package par

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// withWorkers runs fn under a fixed worker count and restores the previous
// override afterwards.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := SetWorkers(n)
	defer SetWorkers(prev)
	fn()
}

func TestWorkersResolutionOrder(t *testing.T) {
	prev := SetWorkers(0)
	defer SetWorkers(prev)
	if Workers() < 1 {
		t.Fatalf("auto Workers() = %d, want >= 1", Workers())
	}
	if got := SetWorkers(7); got != 0 {
		t.Fatalf("previous override = %d, want 0", got)
	}
	if Workers() != 7 {
		t.Fatalf("Workers() = %d after SetWorkers(7)", Workers())
	}
	if got := SetWorkers(-3); got != 7 {
		t.Fatalf("previous override = %d, want 7", got)
	}
	if Workers() < 1 {
		t.Fatal("negative SetWorkers must fall back to auto sizing")
	}
}

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 32} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			for _, grain := range []int{1, 3, 100} {
				withWorkers(t, workers, func() {
					hits := make([]int32, n)
					For(n, grain, func(lo, hi int) {
						if lo < 0 || hi > n || lo > hi {
							t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
						}
						for i := lo; i < hi; i++ {
							atomic.AddInt32(&hits[i], 1)
						}
					})
					for i, h := range hits {
						if h != 1 {
							t.Fatalf("workers=%d n=%d grain=%d: index %d visited %d times",
								workers, n, grain, i, h)
						}
					}
				})
			}
		}
	}
}

func TestForRespectsGrain(t *testing.T) {
	// With grain >= n the loop must run as a single serial chunk.
	withWorkers(t, 8, func() {
		var calls atomic.Int32
		For(10, 100, func(lo, hi int) {
			calls.Add(1)
			if lo != 0 || hi != 10 {
				t.Errorf("expected one chunk [0,10), got [%d,%d)", lo, hi)
			}
		})
		if calls.Load() != 1 {
			t.Fatalf("grain>=n produced %d chunks, want 1", calls.Load())
		}
	})
}

func TestMapMatchesSerialReference(t *testing.T) {
	fn := func(i int) int { return i*i - 3*i }
	want := make([]int, 257)
	for i := range want {
		want[i] = fn(i)
	}
	for _, workers := range []int{1, 2, 8, 32} {
		withWorkers(t, workers, func() {
			got := Map(len(want), 1, fn)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d: Map[%d] = %d, want %d", workers, i, got[i], want[i])
				}
			}
		})
	}
}

// TestMapEquivalenceProperty is the package's core property: for random
// shapes, worker counts, and grains, Map is indistinguishable from the
// serial loop.
func TestMapEquivalenceProperty(t *testing.T) {
	prop := func(seed int64, rawN, rawGrain, rawWorkers uint8) bool {
		n := int(rawN)
		grain := int(rawGrain)%32 + 1
		workers := int(rawWorkers)%16 + 1
		rng := rand.New(rand.NewSource(seed))
		table := make([]float64, n)
		for i := range table {
			table[i] = rng.NormFloat64()
		}
		fn := func(i int) float64 { return table[i]*float64(i) + 0.5 }
		serial := make([]float64, n)
		for i := range serial {
			serial[i] = fn(i)
		}
		prev := SetWorkers(workers)
		defer SetWorkers(prev)
		got := Map(n, grain, fn)
		for i := range serial {
			if got[i] != serial[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestForPanicPropagates(t *testing.T) {
	withWorkers(t, 4, func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Fatalf("recovered %v, want \"boom\"", r)
			}
		}()
		For(100, 1, func(lo, hi int) {
			if lo == 0 {
				panic("boom")
			}
		})
		t.Fatal("For must re-raise the worker panic")
	})
}

func TestForOversubscription(t *testing.T) {
	// Far more workers than indices or cores: still exactly-once coverage.
	withWorkers(t, 64, func() {
		var sum atomic.Int64
		For(1000, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sum.Add(int64(i))
			}
		})
		if sum.Load() != 1000*999/2 {
			t.Fatalf("sum = %d, want %d", sum.Load(), 1000*999/2)
		}
	})
}

func TestNestedFor(t *testing.T) {
	// Converted paths nest (frame-level Map around window-level For); the
	// pool must stay correct when workers spawn their own parallel loops.
	withWorkers(t, 4, func() {
		outer := Map(8, 1, func(i int) int {
			var s atomic.Int64
			For(100, 10, func(lo, hi int) {
				for j := lo; j < hi; j++ {
					s.Add(int64(j))
				}
			})
			return int(s.Load()) + i
		})
		for i, v := range outer {
			if v != 100*99/2+i {
				t.Fatalf("nested result[%d] = %d", i, v)
			}
		}
	})
}

func BenchmarkForOverhead(b *testing.B) {
	work := make([]float64, 1<<16)
	for i := range work {
		work[i] = float64(i)
	}
	for i := 0; i < b.N; i++ {
		For(len(work), 4096, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				work[j] = work[j]*1.000001 + 1
			}
		})
	}
}
