package par

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// withWorkers runs fn under a fixed worker count and restores the previous
// override afterwards.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := SetWorkers(n)
	defer SetWorkers(prev)
	fn()
}

func TestWorkersResolutionOrder(t *testing.T) {
	prev := SetWorkers(0)
	defer SetWorkers(prev)
	if Workers() < 1 {
		t.Fatalf("auto Workers() = %d, want >= 1", Workers())
	}
	if got := SetWorkers(7); got != 0 {
		t.Fatalf("previous override = %d, want 0", got)
	}
	if Workers() != 7 {
		t.Fatalf("Workers() = %d after SetWorkers(7)", Workers())
	}
	if got := SetWorkers(-3); got != 7 {
		t.Fatalf("previous override = %d, want 7", got)
	}
	if Workers() < 1 {
		t.Fatal("negative SetWorkers must fall back to auto sizing")
	}
}

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 32} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			for _, grain := range []int{1, 3, 100} {
				withWorkers(t, workers, func() {
					hits := make([]int32, n)
					For(n, grain, func(lo, hi int) {
						if lo < 0 || hi > n || lo > hi {
							t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
						}
						for i := lo; i < hi; i++ {
							atomic.AddInt32(&hits[i], 1)
						}
					})
					for i, h := range hits {
						if h != 1 {
							t.Fatalf("workers=%d n=%d grain=%d: index %d visited %d times",
								workers, n, grain, i, h)
						}
					}
				})
			}
		}
	}
}

// TestForNeverDispatchesEmptyChunks is the regression test for the
// trailing-chunk bug: size = ceil(n/chunks) is computed after clamping
// chunks to the worker count, so combinations like n=10, grain=1, workers=8
// (size=2, only 5 real chunks) used to dispatch fn(10, 10) and even
// fn(14, 10). Sweep small n × worker × grain combinations and require every
// chunk to be non-empty, in-range, and to cover each index exactly once.
func TestForNeverDispatchesEmptyChunks(t *testing.T) {
	for workers := 1; workers <= 12; workers++ {
		for n := 1; n <= 40; n++ {
			for grain := 1; grain <= 3; grain++ {
				withWorkers(t, workers, func() {
					hits := make([]int32, n)
					For(n, grain, func(lo, hi int) {
						if lo >= hi {
							t.Errorf("workers=%d n=%d grain=%d: empty chunk [%d,%d) dispatched",
								workers, n, grain, lo, hi)
							return
						}
						if lo < 0 || hi > n {
							t.Errorf("workers=%d n=%d grain=%d: out-of-range chunk [%d,%d)",
								workers, n, grain, lo, hi)
							return
						}
						for i := lo; i < hi; i++ {
							atomic.AddInt32(&hits[i], 1)
						}
					})
					for i, h := range hits {
						if h != 1 {
							t.Fatalf("workers=%d n=%d grain=%d: index %d visited %d times",
								workers, n, grain, i, h)
						}
					}
				})
			}
		}
	}
}

func TestPoolScopedWorkers(t *testing.T) {
	// A fixed-size pool must ignore the process-wide override entirely.
	withWorkers(t, 3, func() {
		p := NewPool(8)
		if p.Workers() != 8 {
			t.Fatalf("fixed pool Workers() = %d, want 8", p.Workers())
		}
		if Workers() != 3 {
			t.Fatalf("global Workers() = %d, want 3", Workers())
		}
		// Auto pools and nil pools resolve the process-wide setting.
		if NewPool(0).Workers() != 3 {
			t.Fatalf("auto pool Workers() = %d, want 3", NewPool(0).Workers())
		}
		if (*Pool)(nil).Workers() != 3 {
			t.Fatalf("nil pool Workers() = %d, want 3", (*Pool)(nil).Workers())
		}
	})
}

func TestPoolForMatchesSerial(t *testing.T) {
	fn := func(i int) int { return 7*i + 1 }
	want := make([]int, 100)
	for i := range want {
		want[i] = fn(i)
	}
	for _, n := range []int{1, 2, 4, 16} {
		p := NewPool(n)
		got := MapPool(p, len(want), 1, fn)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pool(%d): Map[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

// TestConcurrentPools proves the reentrancy fix: pools with different sizes
// running concurrently neither interfere with each other nor disturb the
// process-wide setting (the old defer SetWorkers(SetWorkers(n)) dance could
// restore the wrong global when calls overlapped).
func TestConcurrentPools(t *testing.T) {
	withWorkers(t, 5, func() {
		var wg sync.WaitGroup
		for _, size := range []int{1, 2, 8, 16} {
			wg.Add(1)
			go func(size int) {
				defer wg.Done()
				p := NewPool(size)
				for rep := 0; rep < 20; rep++ {
					var sum atomic.Int64
					p.For(500, 1, func(lo, hi int) {
						for i := lo; i < hi; i++ {
							sum.Add(int64(i))
						}
					})
					if sum.Load() != 500*499/2 {
						t.Errorf("pool(%d): sum = %d", size, sum.Load())
						return
					}
					if p.Workers() != size {
						t.Errorf("pool(%d): Workers() drifted to %d", size, p.Workers())
						return
					}
				}
			}(size)
		}
		wg.Wait()
		if Workers() != 5 {
			t.Fatalf("global Workers() = %d after concurrent pools, want 5", Workers())
		}
	})
}

func TestPoolStats(t *testing.T) {
	p := NewPool(4)
	p.For(100, 1, func(lo, hi int) {
		s := 0
		for i := lo; i < hi; i++ {
			s += i
		}
	})
	p.For(1, 1, func(lo, hi int) {}) // serial fast path
	st := p.Stats()
	if st.Workers != 4 {
		t.Errorf("Stats.Workers = %d, want 4", st.Workers)
	}
	if st.Calls != 2 {
		t.Errorf("Stats.Calls = %d, want 2", st.Calls)
	}
	// 4 parallel chunks + 1 serial chunk.
	if st.Chunks != 5 {
		t.Errorf("Stats.Chunks = %d, want 5", st.Chunks)
	}
	if len(st.Busy) == 0 || len(st.Busy) > 4 {
		t.Errorf("Stats.Busy has %d slots, want 1..4", len(st.Busy))
	}
	if st.BusyTotal() < 0 {
		t.Errorf("BusyTotal = %v", st.BusyTotal())
	}
	// n <= 0 must not count as a call.
	p.For(0, 1, func(lo, hi int) { t.Error("fn called for n=0") })
	if got := p.Stats().Calls; got != 2 {
		t.Errorf("Calls after For(0) = %d, want 2", got)
	}
}

func TestForRespectsGrain(t *testing.T) {
	// With grain >= n the loop must run as a single serial chunk.
	withWorkers(t, 8, func() {
		var calls atomic.Int32
		For(10, 100, func(lo, hi int) {
			calls.Add(1)
			if lo != 0 || hi != 10 {
				t.Errorf("expected one chunk [0,10), got [%d,%d)", lo, hi)
			}
		})
		if calls.Load() != 1 {
			t.Fatalf("grain>=n produced %d chunks, want 1", calls.Load())
		}
	})
}

func TestMapMatchesSerialReference(t *testing.T) {
	fn := func(i int) int { return i*i - 3*i }
	want := make([]int, 257)
	for i := range want {
		want[i] = fn(i)
	}
	for _, workers := range []int{1, 2, 8, 32} {
		withWorkers(t, workers, func() {
			got := Map(len(want), 1, fn)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d: Map[%d] = %d, want %d", workers, i, got[i], want[i])
				}
			}
		})
	}
}

// TestMapEquivalenceProperty is the package's core property: for random
// shapes, worker counts, and grains, Map is indistinguishable from the
// serial loop.
func TestMapEquivalenceProperty(t *testing.T) {
	prop := func(seed int64, rawN, rawGrain, rawWorkers uint8) bool {
		n := int(rawN)
		grain := int(rawGrain)%32 + 1
		workers := int(rawWorkers)%16 + 1
		rng := rand.New(rand.NewSource(seed))
		table := make([]float64, n)
		for i := range table {
			table[i] = rng.NormFloat64()
		}
		fn := func(i int) float64 { return table[i]*float64(i) + 0.5 }
		serial := make([]float64, n)
		for i := range serial {
			serial[i] = fn(i)
		}
		prev := SetWorkers(workers)
		defer SetWorkers(prev)
		got := Map(n, grain, fn)
		for i := range serial {
			if got[i] != serial[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestForPanicPropagates(t *testing.T) {
	withWorkers(t, 4, func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Fatalf("recovered %v, want \"boom\"", r)
			}
		}()
		For(100, 1, func(lo, hi int) {
			if lo == 0 {
				panic("boom")
			}
		})
		t.Fatal("For must re-raise the worker panic")
	})
}

func TestForOversubscription(t *testing.T) {
	// Far more workers than indices or cores: still exactly-once coverage.
	withWorkers(t, 64, func() {
		var sum atomic.Int64
		For(1000, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sum.Add(int64(i))
			}
		})
		if sum.Load() != 1000*999/2 {
			t.Fatalf("sum = %d, want %d", sum.Load(), 1000*999/2)
		}
	})
}

func TestNestedFor(t *testing.T) {
	// Converted paths nest (frame-level Map around window-level For); the
	// pool must stay correct when workers spawn their own parallel loops.
	withWorkers(t, 4, func() {
		outer := Map(8, 1, func(i int) int {
			var s atomic.Int64
			For(100, 10, func(lo, hi int) {
				for j := lo; j < hi; j++ {
					s.Add(int64(j))
				}
			})
			return int(s.Load()) + i
		})
		for i, v := range outer {
			if v != 100*99/2+i {
				t.Fatalf("nested result[%d] = %d", i, v)
			}
		}
	})
}

func BenchmarkForOverhead(b *testing.B) {
	work := make([]float64, 1<<16)
	for i := range work {
		work[i] = float64(i)
	}
	for i := 0; i < b.N; i++ {
		For(len(work), 4096, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				work[j] = work[j]*1.000001 + 1
			}
		})
	}
}
