// Package report renders the experiment results into a single
// self-contained HTML page: the three paper tables, the Figure 5 sweeps,
// the aggregate-count summaries, the attack comparison, and the
// representative frames (PNGs inlined as data URIs so the file is
// portable).
package report

import (
	"encoding/base64"
	"fmt"
	"html/template"
	"io"
	"os"
	"path/filepath"
	"sort"

	"verro/internal/exp"
	"verro/internal/motio"
)

// Data collects everything the page shows; any section may be empty.
type Data struct {
	Title     string
	Table1    []exp.Table1Row
	Table2    []exp.Table2Row
	Table3    []exp.Table3Row
	Fig5      map[string][]exp.Fig5Point // per video
	Attacks   []*exp.AttackRow
	Baselines []*exp.BaselineResult
	// Frames maps a caption to a PNG file path, inlined at render time.
	Frames map[string]string
}

// frameImg is the template-facing inlined image.
type frameImg struct {
	Caption string
	DataURI template.URL
}

type fig5Section struct {
	Video  string
	Points []exp.Fig5Point
}

var page = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{{.Title}}</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 70rem; color: #222; }
h1 { border-bottom: 2px solid #444; padding-bottom: .3rem; }
h2 { margin-top: 2rem; }
table { border-collapse: collapse; margin: .8rem 0; }
th, td { border: 1px solid #bbb; padding: .25rem .6rem; text-align: right; }
th { background: #f0f0f0; }
td:first-child, th:first-child { text-align: left; }
img { max-width: 20rem; margin: .4rem; border: 1px solid #ccc; }
figure { display: inline-block; margin: .4rem; text-align: center; }
figcaption { font-size: .8rem; color: #555; }
</style></head><body>
<h1>{{.Title}}</h1>

{{if .Table1}}<h2>Table 1 — video characteristics</h2>
<table><tr><th>Video</th><th>Resolution</th><th>Frames</th><th>Objects</th><th>Camera</th></tr>
{{range .Table1}}<tr><td>{{.Video}}</td><td>{{.Resolution}}</td><td>{{.Frames}}</td><td>{{.Objects}}</td><td>{{.Camera}}</td></tr>{{end}}
</table>{{end}}

{{if .Table2}}<h2>Table 2 — distinct objects after key-frame extraction</h2>
<table><tr><th>Video</th><th>Frames</th><th>Objects</th><th>Key frames</th><th>Remaining</th></tr>
{{range .Table2}}<tr><td>{{.Video}}</td><td>{{.Frames}}</td><td>{{.Objects}}</td><td>{{.KeyFrames}}</td><td>{{.Remaining}}</td></tr>{{end}}
</table>{{end}}

{{if .Table3}}<h2>Table 3 — overheads</h2>
<table><tr><th>Video</th><th>Phase I (s)</th><th>Phase II (s)</th><th>Preprocess (s)</th><th>Bandwidth (MB)</th></tr>
{{range .Table3}}<tr><td>{{.Video}}</td><td>{{printf "%.3f" .Phase1.Seconds}}</td><td>{{printf "%.3f" .Phase2.Seconds}}</td><td>{{printf "%.3f" .Preprocess.Seconds}}</td><td>{{printf "%.2f" .BandwidthMB}}</td></tr>{{end}}
</table>{{end}}

{{range .Fig5Sections}}<h2>Figure 5 — {{.Video}}</h2>
<table><tr><th>f</th><th>original</th><th>opt</th><th>rr</th><th>dev before</th><th>dev after</th></tr>
{{range .Points}}<tr><td>{{printf "%.1f" .F}}</td><td>{{printf "%.0f" .Original}}</td><td>{{printf "%.0f" .Opt}}</td><td>{{printf "%.1f" .RR}}</td><td>{{printf "%.3f" .DevBefore}}</td><td>{{printf "%.3f" .DevAfter}}</td></tr>{{end}}
</table>{{end}}

{{if .Baselines}}<h2>Baseline — Algorithm 1 naive randomized response</h2>
<table><tr><th>Video</th><th>ε</th><th>true 1s</th><th>naive 1s</th><th>naive MAE</th><th>VERRO MAE</th></tr>
{{range .Baselines}}<tr><td>{{.Video}}</td><td>{{printf "%.1f" .Epsilon}}</td><td>{{printf "%.3f" .TrueOnesFrac}}</td><td>{{printf "%.3f" .NaiveOnesFrac}}</td><td>{{printf "%.2f" .NaiveCountMAE}}</td><td>{{printf "%.2f" .VerroCountMAE}}</td></tr>{{end}}
</table>{{end}}

{{if .Attacks}}<h2>Re-identification attack (top-1 success)</h2>
<table><tr><th>Video</th><th>Targets</th><th>Unsanitized</th><th>Blur</th><th>VERRO</th><th>Random</th></tr>
{{range .Attacks}}<tr><td>{{.Video}}</td><td>{{.Targets}}</td><td>{{printf "%.3f" .Identity}}</td><td>{{printf "%.3f" .Blur}}</td><td>{{printf "%.3f" .Verro}}</td><td>{{printf "%.3f" .Random}}</td></tr>{{end}}
</table>{{end}}

{{if .FrameImgs}}<h2>Representative frames (Figures 9-11)</h2>
{{range .FrameImgs}}<figure><img src="{{.DataURI}}" alt="{{.Caption}}"><figcaption>{{.Caption}}</figcaption></figure>{{end}}
{{end}}
</body></html>
`))

// templateData adapts Data for the template.
type templateData struct {
	Title        string
	Table1       []exp.Table1Row
	Table2       []exp.Table2Row
	Table3       []exp.Table3Row
	Fig5Sections []fig5Section
	Attacks      []*exp.AttackRow
	Baselines    []*exp.BaselineResult
	FrameImgs    []frameImg
}

// Render writes the HTML page.
func Render(w io.Writer, d *Data) error {
	td := templateData{
		Title:     d.Title,
		Table1:    d.Table1,
		Table2:    d.Table2,
		Table3:    d.Table3,
		Attacks:   d.Attacks,
		Baselines: d.Baselines,
	}
	if td.Title == "" {
		td.Title = "VERRO experiment report"
	}
	var videos []string
	for v := range d.Fig5 {
		videos = append(videos, v)
	}
	sort.Strings(videos)
	for _, v := range videos {
		td.Fig5Sections = append(td.Fig5Sections, fig5Section{Video: v, Points: d.Fig5[v]})
	}
	var captions []string
	for c := range d.Frames {
		captions = append(captions, c)
	}
	sort.Strings(captions)
	for _, c := range captions {
		uri, err := inlinePNG(d.Frames[c])
		if err != nil {
			return fmt.Errorf("report: frame %q: %w", c, err)
		}
		td.FrameImgs = append(td.FrameImgs, frameImg{Caption: c, DataURI: uri})
	}
	return page.Execute(w, td)
}

// Save renders the report to a file, creating parent directories.
func Save(path string, d *Data) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Render(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// inlinePNG reads a PNG file into a data URI.
func inlinePNG(path string) (template.URL, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return template.URL("data:image/png;base64," + base64.StdEncoding.EncodeToString(raw)), nil
}

// Fig5FromTable reconstructs Fig5 points from a saved CSV series (the
// layout written by exp.Fig5Table), letting reports be rebuilt from result
// directories without re-running experiments.
func Fig5FromTable(t *motio.SeriesTable) []exp.Fig5Point {
	col := map[string][]float64{}
	for _, c := range t.Cols {
		col[c.Name] = c.Samples
	}
	out := make([]exp.Fig5Point, len(t.X))
	for i := range t.X {
		out[i] = exp.Fig5Point{
			F:         t.X[i],
			Original:  sampleAt(col["original"], i),
			Opt:       sampleAt(col["opt"], i),
			RR:        sampleAt(col["rr"], i),
			DevBefore: sampleAt(col["dev_before_phase2"], i),
			DevAfter:  sampleAt(col["dev_after_phase2"], i),
		}
	}
	return out
}

func sampleAt(xs []float64, i int) float64 {
	if i < len(xs) {
		return xs[i]
	}
	return 0
}
