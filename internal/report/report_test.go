package report

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"

	"verro/internal/exp"
	"verro/internal/img"
	"verro/internal/motio"
)

func sampleData(t *testing.T) *Data {
	t.Helper()
	dir := t.TempDir()
	png := dir + "/frame.png"
	if err := img.NewFilled(8, 8, img.RGB{R: 200, G: 10, B: 10}).WritePNG(png); err != nil {
		t.Fatal(err)
	}
	return &Data{
		Title: "test report",
		Table1: []exp.Table1Row{
			{Video: "MOT01", Resolution: "384x216", Frames: 450, Objects: 23, Camera: "static"},
		},
		Table2: []exp.Table2Row{
			{Video: "MOT01", Frames: 450, Objects: 23, KeyFrames: 23, Remaining: 20},
		},
		Table3: []exp.Table3Row{
			{Video: "MOT01", Phase1: time.Millisecond, Phase2: 25 * time.Millisecond,
				Preprocess: time.Second, BandwidthMB: 1.28},
		},
		Fig5: map[string][]exp.Fig5Point{
			"MOT01": {
				{F: 0.1, Original: 23, Opt: 20, RR: 20, DevBefore: 0.97, DevAfter: 0.44},
			},
		},
		Attacks: []*exp.AttackRow{
			{Video: "MOT01", Targets: 23, Identity: 1, Blur: 1, Verro: 0.1, Random: 0.04, F: 0.1},
		},
		Baselines: []*exp.BaselineResult{
			{Video: "MOT01", Objects: 23, Epsilon: 61.8, NaiveOnesFrac: 0.48,
				NaiveCountMAE: 5.2, VerroRetained: 20, VerroCountMAE: 0.9, TrueOnesFrac: 0.26},
		},
		Frames: map[string]string{"MOT01 input": png},
	}
}

func TestRender(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, sampleData(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"test report", "Table 1", "Table 2", "Table 3",
		"Figure 5", "MOT01", "Re-identification", "Baseline",
		"data:image/png;base64,",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestRenderEmptySections(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, &Data{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "Table 1") {
		t.Fatal("empty data should omit sections")
	}
	if !strings.Contains(out, "VERRO experiment report") {
		t.Fatal("default title missing")
	}
}

func TestRenderMissingFrameFile(t *testing.T) {
	d := &Data{Frames: map[string]string{"x": "/nonexistent/file.png"}}
	if err := Render(&bytes.Buffer{}, d); err == nil {
		t.Fatal("missing PNG should fail")
	}
}

func TestSave(t *testing.T) {
	path := t.TempDir() + "/sub/report.html"
	if err := Save(path, sampleData(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestFig5FromTable(t *testing.T) {
	tab := motio.NewSeriesTable("f", []float64{0.1, 0.9})
	cols := []struct {
		name    string
		samples []float64
	}{
		{"original", []float64{23, 23}},
		{"opt", []float64{20, 20}},
		{"rr", []float64{20, 18}},
		{"dev_before_phase2", []float64{0.97, 0.98}},
		{"dev_after_phase2", []float64{0.44, 0.65}},
	}
	for _, c := range cols {
		if err := tab.AddColumn(c.name, c.samples); err != nil {
			t.Fatal(err)
		}
	}
	points := Fig5FromTable(tab)
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	if points[1].RR != 18 || points[0].DevAfter != 0.44 {
		t.Fatalf("points = %+v", points)
	}
	// Missing columns read as zero, not panic.
	short := motio.NewSeriesTable("f", []float64{0.1})
	if got := Fig5FromTable(short); got[0].Original != 0 {
		t.Fatal("missing column should be zero")
	}
}
