package scene

import (
	"verro/internal/geom"
	"verro/internal/img"
)

// Style selects the background painter.
type Style int

// Background styles matching the three benchmark sequences.
const (
	StyleSquare      Style = iota // MOT01: daylight plaza
	StyleNightStreet              // MOT03: street at night
	StyleStreet                   // MOT06: daylight street (moving camera)
)

func (s Style) String() string {
	switch s {
	case StyleSquare:
		return "square"
	case StyleNightStreet:
		return "night-street"
	case StyleStreet:
		return "street"
	default:
		return "unknown"
	}
}

// PaintBackground renders a deterministic, textured background of the given
// style. The texture (noise, pavement joints, facades) matters: key-frame
// clustering, inpainting and HOG all behave differently on flat images.
func PaintBackground(style Style, w, h int, seed uint64) *img.Image {
	m := img.New(w, h)
	switch style {
	case StyleNightStreet:
		paintNightStreet(m, seed)
	case StyleStreet:
		paintStreet(m, seed)
	default:
		paintSquare(m, seed)
	}
	return m
}

func paintSquare(m *img.Image, seed uint64) {
	// Sky band, building band, plaza.
	skyH := m.H / 5
	m.Fill(geom.R(0, 0, m.W, skyH), img.RGB{R: 176, G: 206, B: 235})
	buildH := m.H * 2 / 5
	m.Fill(geom.R(0, skyH, m.W, buildH), img.RGB{R: 150, G: 140, B: 130})
	// Windows on the facade.
	for x := m.W / 20; x < m.W; x += m.W / 10 {
		for y := skyH + 2; y < buildH-3; y += (buildH - skyH) / 4 {
			m.Fill(geom.RectAt(x, y, m.W/40+1, (buildH-skyH)/8+1), img.RGB{R: 90, G: 100, B: 120})
		}
	}
	// Plaza with paving joints.
	m.Fill(geom.R(0, buildH, m.W, m.H), img.RGB{R: 190, G: 182, B: 170})
	joint := img.RGB{R: 168, G: 160, B: 148}
	for y := buildH; y < m.H; y += maxInt(m.H/12, 2) {
		m.Fill(geom.R(0, y, m.W, y+1), joint)
	}
	for x := 0; x < m.W; x += maxInt(m.W/16, 2) {
		m.Fill(geom.R(x, buildH, x+1, m.H), joint)
	}
	m.AddNoise(6, seed)
}

func paintNightStreet(m *img.Image, seed uint64) {
	// Dark sky, lit storefronts, asphalt.
	skyH := m.H / 4
	m.VerticalGradient(img.RGB{R: 10, G: 12, B: 28}, img.RGB{R: 30, G: 32, B: 52})
	storeH := m.H / 2
	m.Fill(geom.R(0, skyH, m.W, storeH), img.RGB{R: 44, G: 38, B: 52})
	// Bright shop windows — the light pools the paper's night video shows.
	for i, x := 0, m.W/24; x < m.W-m.W/12; i, x = i+1, x+m.W/8 {
		c := img.RGB{R: 235, G: 210, B: 130}
		if i%3 == 1 {
			c = img.RGB{R: 140, G: 200, B: 235}
		}
		m.Fill(geom.RectAt(x, skyH+2, m.W/14, storeH-skyH-6), c)
	}
	// Asphalt with lane markings.
	m.Fill(geom.R(0, storeH, m.W, m.H), img.RGB{R: 38, G: 38, B: 42})
	for x := 0; x < m.W; x += m.W / 8 {
		m.Fill(geom.RectAt(x, storeH+(m.H-storeH)/2, m.W/16, 2), img.RGB{R: 150, G: 150, B: 120})
	}
	m.AddNoise(8, seed)
}

func paintStreet(m *img.Image, seed uint64) {
	skyH := m.H / 4
	m.Fill(geom.R(0, 0, m.W, skyH), img.RGB{R: 196, G: 216, B: 238})
	// Row houses with varying tones so a panning camera sees change.
	houseH := m.H * 11 / 20
	tones := []img.RGB{
		{R: 168, G: 130, B: 110},
		{R: 140, G: 148, B: 132},
		{R: 178, G: 160, B: 120},
		{R: 120, G: 128, B: 150},
	}
	hw := maxInt(m.W/9, 4)
	for i, x := 0, 0; x < m.W; i, x = i+1, x+hw {
		m.Fill(geom.R(x, skyH, x+hw, houseH), tones[i%len(tones)])
		// Door.
		m.Fill(geom.RectAt(x+hw/3, houseH-(houseH-skyH)/3, hw/4+1, (houseH-skyH)/3), img.RGB{R: 70, G: 50, B: 40})
	}
	// Sidewalk and road.
	walkH := m.H * 15 / 20
	m.Fill(geom.R(0, houseH, m.W, walkH), img.RGB{R: 180, G: 176, B: 168})
	m.Fill(geom.R(0, walkH, m.W, m.H), img.RGB{R: 90, G: 90, B: 96})
	m.AddNoise(6, seed)
}

// PanoramaForPan builds a background wide enough that a w-wide viewport can
// pan by panRange pixels across it, for moving-camera sequences.
func PanoramaForPan(style Style, w, h, panRange int, seed uint64) *img.Image {
	return PaintBackground(style, w+panRange, h, seed)
}

// ViewportAt crops the w×h viewport at horizontal pan offset dx from the
// panorama.
func ViewportAt(pano *img.Image, w, h, dx int) *img.Image {
	dx = geom.Clamp(dx, 0, pano.W-w)
	return pano.SubImage(geom.RectAt(dx, 0, w, h))
}
