package scene

import (
	"fmt"
	"math"
	"math/rand"

	"verro/internal/geom"
	"verro/internal/img"
	"verro/internal/motio"
	"verro/internal/vid"
)

// Preset describes one benchmark video to generate. The three MOT presets
// reproduce the frame counts, object counts and camera motion of the
// paper's Table 1 at a resolution sized for a small machine.
type Preset struct {
	Name    string
	W, H    int
	Frames  int
	Objects int
	FPS     float64
	Moving  bool
	Style   Style
	Class   ObjectClass
	Seed    int64
	// PanRange is the total horizontal camera travel for moving presets.
	PanRange int
}

// MOT01 mirrors MOT16-01: people walking around a large square, static
// camera, 450 frames, 23 pedestrians.
func MOT01() Preset {
	return Preset{
		Name: "MOT01", W: 384, H: 216, Frames: 450, Objects: 23,
		FPS: 30, Moving: false, Style: StyleSquare, Class: Pedestrian, Seed: 109,
	}
}

// MOT03 mirrors MOT16-03: pedestrians on a street at night, static camera,
// 1500 frames, 148 pedestrians.
func MOT03() Preset {
	return Preset{
		Name: "MOT03", W: 384, H: 216, Frames: 1500, Objects: 148,
		FPS: 30, Moving: false, Style: StyleNightStreet, Class: Pedestrian, Seed: 103,
	}
}

// MOT06 mirrors MOT16-06: street scene from a moving platform, 1194
// frames, 221 pedestrians.
func MOT06() Preset {
	return Preset{
		Name: "MOT06", W: 320, H: 240, Frames: 1194, Objects: 221,
		FPS: 14, Moving: true, Style: StyleStreet, Class: Pedestrian, Seed: 106,
		PanRange: 320,
	}
}

// Presets returns the three benchmark presets in paper order.
func Presets() []Preset { return []Preset{MOT01(), MOT03(), MOT06()} }

// PresetByName looks a preset up by its table name.
func PresetByName(name string) (Preset, error) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("scene: unknown preset %q", name)
}

// Scaled returns a copy of p with geometry and population scaled by factor
// (0 < factor ≤ 1), for fast tests and examples.
func (p Preset) Scaled(factor float64) Preset {
	s := p
	s.W = maxInt(int(float64(p.W)*factor), 48)
	s.H = maxInt(int(float64(p.H)*factor), 36)
	s.Frames = maxInt(int(float64(p.Frames)*factor), 10)
	s.Objects = maxInt(int(float64(p.Objects)*factor), 2)
	s.PanRange = int(float64(p.PanRange) * factor)
	s.Name = fmt.Sprintf("%s-x%.2g", p.Name, factor)
	return s
}

// Generated bundles a generated video with its ground truth.
type Generated struct {
	Preset Preset
	Video  *vid.Video
	Truth  *motio.TrackSet
	// CleanBackground holds, for each frame, the background image before
	// any object was drawn — the oracle against which inpainting quality
	// can be measured.
	CleanBackground []*img.Image
	// PanOffsets records the camera pan offset per frame (all zero for
	// static presets).
	PanOffsets []int
}

// panOffsetAt eases the camera across the panned range over the whole
// video (smooth cosine ramp).
func panOffsetAt(k, frames, panRange int) int {
	t := float64(k) / float64(maxInt(frames-1, 1))
	return int(math.Round(float64(panRange) * 0.5 * (1 - math.Cos(t*math.Pi))))
}

// Generate renders the preset into a video plus exact ground-truth tracks.
// Rendering is fully deterministic for a given preset.
func Generate(p Preset) (*Generated, error) {
	if p.W <= 0 || p.H <= 0 || p.Frames <= 0 {
		return nil, fmt.Errorf("scene: invalid preset geometry %+v", p)
	}
	if p.Objects < 0 {
		return nil, fmt.Errorf("scene: negative object count %d", p.Objects)
	}
	rng := rand.New(rand.NewSource(p.Seed))

	// Background: one image for static cameras; a panorama plus per-frame
	// viewports for moving ones.
	var pano *img.Image
	if p.Moving {
		pan := p.PanRange
		if pan <= 0 {
			pan = p.W
		}
		pano = PanoramaForPan(p.Style, p.W, p.H, pan, uint64(p.Seed))
	} else {
		pano = PaintBackground(p.Style, p.W, p.H, uint64(p.Seed))
	}

	plans := PlanObjects(p.Objects, p.Frames, p.W, p.H, p.Style, p.Class, rng)
	if p.Moving {
		// Objects live in world coordinates. Each plan was laid out in
		// viewport coordinates; anchor it to the world region the camera
		// shows at the object's entry time (screen x = world x − 0.6·dx
		// given the foreground parallax), so objects appear on screen when
		// they enter and drift out as the camera sweeps on.
		for _, plan := range plans {
			dxEnter := panOffsetAt(plan.Enter, p.Frames, pano.W-p.W)
			shift := 0.6 * float64(dxEnter)
			for i := range plan.positions {
				plan.positions[i].X += shift
			}
		}
	}

	v := vid.New(p.Name, p.W, p.H, p.FPS)
	v.Moving = p.Moving
	truth := motio.NewTrackSet()
	tracks := make(map[int]*motio.Track, len(plans))
	for _, plan := range plans {
		t := motio.NewTrack(plan.ID, plan.Class.String())
		tracks[plan.ID] = t
		truth.Add(t)
	}

	gen := &Generated{Preset: p, Video: v, Truth: truth}
	bounds := geom.R(0, 0, p.W, p.H)
	for k := 0; k < p.Frames; k++ {
		dx := 0
		if p.Moving {
			dx = panOffsetAt(k, p.Frames, pano.W-p.W)
		}
		var frame *img.Image
		if p.Moving {
			frame = ViewportAt(pano, p.W, p.H, dx)
		} else {
			frame = pano.Clone()
		}
		gen.CleanBackground = append(gen.CleanBackground, frame.Clone())
		gen.PanOffsets = append(gen.PanOffsets, dx)

		// Draw objects back-to-front (smaller y first) so nearer objects
		// occlude farther ones.
		type draw struct {
			plan *ObjectPlan
			pos  geom.Vec
		}
		var draws []draw
		for _, plan := range plans {
			pos, ok := plan.PosAt(k)
			if !ok {
				continue
			}
			// Moving camera: object world-x shifts against the pan.
			if p.Moving {
				pos.X -= float64(dx) * 0.6 // parallax: objects nearer than facades
			}
			draws = append(draws, draw{plan, pos})
		}
		for i := 1; i < len(draws); i++ { // insertion sort by y (small lists)
			for j := i; j > 0 && draws[j].pos.Y < draws[j-1].pos.Y; j-- {
				draws[j], draws[j-1] = draws[j-1], draws[j]
			}
		}
		// Per-frame sensor noise: real cameras never produce two identical
		// frames. Without it the entropy-based key-frame election of
		// Algorithm 2 is dominated by the sprites themselves, which biases
		// key frames toward object-rich frames in a way real footage does
		// not exhibit.
		frame.AddNoise(2, uint64(p.Seed)*1_000_003+uint64(k))

		for _, d := range draws {
			phase := float64(k) * 0.35
			box := DrawObject(frame, d.plan.Class, Palette(d.plan.ID), d.pos, phase)
			vis := box.Intersect(bounds)
			// Only record ground truth when a meaningful part is visible.
			if vis.Area()*2 >= box.Area() && box.Area() > 0 {
				tracks[d.plan.ID].Set(k, vis)
			}
		}
		if err := v.Append(frame); err != nil {
			return nil, err
		}
	}

	// Drop objects that never became visible (fully clipped trajectories).
	kept := motio.NewTrackSet()
	for _, t := range truth.Tracks {
		if t.Len() > 0 {
			kept.Add(t)
		}
	}
	gen.Truth = kept
	return gen, nil
}
