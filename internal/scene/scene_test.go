package scene

import (
	"math/rand"
	"testing"

	"verro/internal/geom"
	"verro/internal/img"
)

func TestPresetsMatchPaperTable1(t *testing.T) {
	ps := Presets()
	if len(ps) != 3 {
		t.Fatalf("presets = %d", len(ps))
	}
	wantFrames := map[string]int{"MOT01": 450, "MOT03": 1500, "MOT06": 1194}
	wantObjects := map[string]int{"MOT01": 23, "MOT03": 148, "MOT06": 221}
	wantMoving := map[string]bool{"MOT01": false, "MOT03": false, "MOT06": true}
	for _, p := range ps {
		if p.Frames != wantFrames[p.Name] {
			t.Errorf("%s frames = %d, want %d", p.Name, p.Frames, wantFrames[p.Name])
		}
		if p.Objects != wantObjects[p.Name] {
			t.Errorf("%s objects = %d, want %d", p.Name, p.Objects, wantObjects[p.Name])
		}
		if p.Moving != wantMoving[p.Name] {
			t.Errorf("%s moving = %t", p.Name, p.Moving)
		}
	}
}

func TestPresetByName(t *testing.T) {
	p, err := PresetByName("MOT03")
	if err != nil || p.Name != "MOT03" {
		t.Fatalf("%v %v", p, err)
	}
	if _, err := PresetByName("nope"); err == nil {
		t.Fatal("unknown preset should fail")
	}
}

func TestScaled(t *testing.T) {
	p := MOT01().Scaled(0.25)
	if p.Frames >= MOT01().Frames || p.Objects >= MOT01().Objects {
		t.Fatalf("scaled preset not smaller: %+v", p)
	}
	tiny := MOT01().Scaled(0.0001)
	if tiny.W < 48 || tiny.Frames < 10 || tiny.Objects < 2 {
		t.Fatalf("scaling floor violated: %+v", tiny)
	}
}

func smallPreset() Preset {
	return Preset{
		Name: "small", W: 96, H: 72, Frames: 40, Objects: 5,
		FPS: 30, Style: StyleSquare, Class: Pedestrian, Seed: 9,
	}
}

func TestGenerateBasics(t *testing.T) {
	g, err := Generate(smallPreset())
	if err != nil {
		t.Fatal(err)
	}
	if g.Video.Len() != 40 {
		t.Fatalf("frames = %d", g.Video.Len())
	}
	if len(g.CleanBackground) != 40 || len(g.PanOffsets) != 40 {
		t.Fatal("per-frame metadata missing")
	}
	if g.Truth.Len() == 0 || g.Truth.Len() > 5 {
		t.Fatalf("truth objects = %d", g.Truth.Len())
	}
	// Ground-truth boxes lie within frame bounds.
	bounds := geom.R(0, 0, 96, 72)
	for _, tr := range g.Truth.Tracks {
		for k, b := range tr.Boxes {
			if !bounds.Contains(b) {
				t.Fatalf("track %d frame %d box %v outside bounds", tr.ID, k, b)
			}
			if b.Empty() {
				t.Fatalf("track %d frame %d empty box", tr.ID, k)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g1, err := Generate(smallPreset())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(smallPreset())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < g1.Video.Len(); k++ {
		if !g1.Video.Frame(k).Equal(g2.Video.Frame(k)) {
			t.Fatalf("frame %d differs between runs", k)
		}
	}
	if g1.Truth.Len() != g2.Truth.Len() {
		t.Fatal("truth differs between runs")
	}
}

func TestGenerateObjectsActuallyDrawn(t *testing.T) {
	g, err := Generate(smallPreset())
	if err != nil {
		t.Fatal(err)
	}
	// Wherever ground truth claims an object, the frame must differ from
	// the clean background inside the box.
	checked := 0
	for _, tr := range g.Truth.Tracks {
		for k, b := range tr.Boxes {
			frame := g.Video.Frame(k)
			clean := g.CleanBackground[k]
			diff := 0
			for y := b.Min.Y; y < b.Max.Y; y++ {
				for x := b.Min.X; x < b.Max.X; x++ {
					if frame.At(x, y) != clean.At(x, y) {
						diff++
					}
				}
			}
			if diff == 0 {
				t.Fatalf("track %d frame %d: no pixels drawn in %v", tr.ID, k, b)
			}
			checked++
			if checked > 50 {
				return
			}
		}
	}
	if checked == 0 {
		t.Fatal("no ground truth boxes to check")
	}
}

func TestGenerateMovingCameraPans(t *testing.T) {
	p := smallPreset()
	p.Moving = true
	p.PanRange = 60
	p.Style = StyleStreet
	g, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	first, last := g.PanOffsets[0], g.PanOffsets[len(g.PanOffsets)-1]
	if first != 0 || last < 50 {
		t.Fatalf("pan offsets: first=%d last=%d", first, last)
	}
	// Backgrounds must change over time for the moving camera.
	if g.CleanBackground[0].Equal(g.CleanBackground[len(g.CleanBackground)-1]) {
		t.Fatal("moving camera should change the background")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := smallPreset()
	bad.W = 0
	if _, err := Generate(bad); err == nil {
		t.Fatal("zero width should fail")
	}
	neg := smallPreset()
	neg.Objects = -1
	if _, err := Generate(neg); err == nil {
		t.Fatal("negative objects should fail")
	}
}

func TestGenerateZeroObjects(t *testing.T) {
	p := smallPreset()
	p.Objects = 0
	g, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.Truth.Len() != 0 {
		t.Fatalf("expected no objects, got %d", g.Truth.Len())
	}
	// Frames differ from the clean background only by per-frame sensor
	// noise (small amplitude), never by drawn content.
	for k := 0; k < g.Video.Len(); k++ {
		if d := g.Video.Frame(k).MeanAbsDiff(g.CleanBackground[k]); d > 3 {
			t.Fatalf("frame %d deviates from background by %v with no objects", k, d)
		}
	}
}

func TestDepthScale(t *testing.T) {
	if DepthScale(0, 100) >= DepthScale(99, 100) {
		t.Fatal("objects lower in the frame must be larger")
	}
	if DepthScale(50, 1) != 1 {
		t.Fatal("degenerate frame height should return 1")
	}
}

func TestSpriteSizeFloors(t *testing.T) {
	w, h := SpriteSize(Pedestrian, 0.01)
	if w < 3 || h < 5 {
		t.Fatalf("sprite too small: %dx%d", w, h)
	}
	wv, hv := SpriteSize(Vehicle, 1)
	if wv <= hv {
		t.Fatal("vehicles should be wider than tall")
	}
}

func TestPaletteDistinct(t *testing.T) {
	seen := map[img.RGB]bool{}
	for i := 0; i < 64; i++ {
		c := Palette(i)
		if seen[c] {
			t.Fatalf("palette repeats at %d: %v", i, c)
		}
		seen[c] = true
	}
}

func TestRenderSpriteHasOpaquePixels(t *testing.T) {
	for _, class := range []ObjectClass{Pedestrian, Vehicle} {
		sp := RenderSprite(class, img.RGB{R: 200, G: 0, B: 0}, 10, 24, 0)
		opaque := 0
		for y := 0; y < sp.H; y++ {
			for x := 0; x < sp.W; x++ {
				if sp.At(x, y) != spriteKey {
					opaque++
				}
			}
		}
		if opaque == 0 {
			t.Fatalf("%v sprite entirely transparent", class)
		}
	}
}

func TestPlanObjectsSpreadsEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	plans := PlanObjects(10, 300, 96, 72, StyleSquare, Pedestrian, rng)
	if len(plans) != 10 {
		t.Fatalf("plans = %d", len(plans))
	}
	for i, p := range plans {
		if p.Enter < 0 || p.Enter >= 300 || p.Exit < p.Enter {
			t.Fatalf("plan %d has bad lifetime [%d,%d]", i, p.Enter, p.Exit)
		}
		if _, ok := p.PosAt(p.Enter); !ok {
			t.Fatalf("plan %d missing position at entry", i)
		}
		if _, ok := p.PosAt(p.Enter - 1); ok {
			t.Fatalf("plan %d present before entry", i)
		}
	}
	// Entries should span the video, not cluster at frame 0.
	lastEnter := plans[len(plans)-1].Enter
	if lastEnter < 150 {
		t.Fatalf("entries clustered early: last enter %d", lastEnter)
	}
}

func TestObjectClassString(t *testing.T) {
	if Pedestrian.String() != "pedestrian" || Vehicle.String() != "vehicle" {
		t.Fatal("class names wrong")
	}
	if ObjectClass(9).String() != "object" {
		t.Fatal("unknown class should be 'object'")
	}
}

func TestStyleString(t *testing.T) {
	for _, s := range []Style{StyleSquare, StyleNightStreet, StyleStreet} {
		if s.String() == "unknown" {
			t.Fatalf("style %d has no name", s)
		}
	}
	if Style(9).String() != "unknown" {
		t.Fatal("unknown style name wrong")
	}
}

func TestViewportAtClamps(t *testing.T) {
	pano := PaintBackground(StyleStreet, 200, 72, 1)
	vp := ViewportAt(pano, 96, 72, 500) // clamped to right edge
	if vp.W != 96 || vp.H != 72 {
		t.Fatalf("viewport dims %dx%d", vp.W, vp.H)
	}
	vp2 := ViewportAt(pano, 96, 72, -10)
	if vp2.W != 96 {
		t.Fatal("negative offset should clamp")
	}
}

func TestPlanObjectsIncludesBriefVisitors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	plans := PlanObjects(60, 600, 256, 192, StyleSquare, Pedestrian, rng)
	short := 0
	for _, p := range plans {
		if p.Exit-p.Enter < 40 {
			short++
		}
	}
	// briefFraction steers ~30% of objects to short appearances; allow a
	// generous band since other archetypes can also be truncated.
	if short < 8 {
		t.Fatalf("only %d of 60 objects are short-lived; brief visitors missing", short)
	}
	if short > 45 {
		t.Fatalf("%d of 60 objects short-lived; population too transient", short)
	}
}
