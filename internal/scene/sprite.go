// Package scene generates the synthetic benchmark videos that stand in for
// the paper's three MOT16 sequences: textured street/square backgrounds with
// sprite pedestrians (and vehicles) moving along realistic trajectories,
// together with exact ground-truth tracks. See DESIGN.md for why this
// substitution preserves the behaviour VERRO's evaluation depends on.
package scene

import (
	"math"

	"verro/internal/geom"
	"verro/internal/img"
)

// spriteKey is the transparent color key used when compositing sprites.
var spriteKey = img.RGB{R: 255, G: 0, B: 255}

// ObjectClass selects the sprite family.
type ObjectClass int

// Supported object classes.
const (
	Pedestrian ObjectClass = iota
	Vehicle
)

func (c ObjectClass) String() string {
	switch c {
	case Pedestrian:
		return "pedestrian"
	case Vehicle:
		return "vehicle"
	default:
		return "object"
	}
}

// SpriteSize returns the rendered sprite dimensions for an object of the
// given class at depth scale s (1 = nominal). Pedestrians are tall boxes,
// vehicles wide ones.
func SpriteSize(class ObjectClass, s float64) (w, h int) {
	switch class {
	case Vehicle:
		w = int(math.Round(26 * s))
		h = int(math.Round(12 * s))
	default:
		w = int(math.Round(8 * s))
		h = int(math.Round(20 * s))
	}
	if w < 3 {
		w = 3
	}
	if h < 5 {
		h = 5
	}
	return w, h
}

// DepthScale implements the perspective cue the paper mentions (objects are
// drawn larger when closer to the camera): scale grows linearly from 0.6 at
// the top of the frame to 1.4 at the bottom.
func DepthScale(cy float64, frameH int) float64 {
	if frameH <= 1 {
		return 1
	}
	t := geom.ClampF(cy/float64(frameH-1), 0, 1)
	return 0.6 + 0.8*t
}

// RenderSprite draws an object of the given class, color and phase into a
// fresh sprite image with transparent (color-key) background. phase drives
// the walking-leg animation for pedestrians.
func RenderSprite(class ObjectClass, c img.RGB, w, h int, phase float64) *img.Image {
	sp := img.NewFilled(w, h, spriteKey)
	switch class {
	case Vehicle:
		renderVehicle(sp, c)
	default:
		renderPedestrian(sp, c, phase)
	}
	return sp
}

func renderPedestrian(sp *img.Image, c img.RGB, phase float64) {
	w, h := sp.W, sp.H
	headR := h / 6
	if headR < 1 {
		headR = 1
	}
	headC := geom.Pt(w/2, headR)
	skin := img.RGB{R: 224, G: 188, B: 154}
	sp.DrawDisc(headC, headR, skin)

	// Torso.
	torsoTop := 2 * headR
	torsoBot := h * 6 / 10
	sp.Fill(geom.R(w/5, torsoTop, w-w/5, torsoBot), c)

	// Legs: two strips whose separation oscillates with the walk phase.
	legC := img.RGB{R: c.R / 2, G: c.G / 2, B: c.B / 2}
	swing := int(math.Round(float64(w) / 4 * math.Sin(phase)))
	legW := maxInt(w/5, 1)
	leftX := w/2 - legW - swing/2
	rightX := w/2 + swing/2
	sp.Fill(geom.R(leftX, torsoBot, leftX+legW, h), legC)
	sp.Fill(geom.R(rightX, torsoBot, rightX+legW, h), legC)
}

func renderVehicle(sp *img.Image, c img.RGB) {
	w, h := sp.W, sp.H
	// Body with a cabin on top.
	sp.Fill(geom.R(0, h/3, w, h*5/6), c)
	cabin := img.RGB{R: c.R / 2, G: c.G / 2, B: c.B / 2}
	sp.Fill(geom.R(w/5, 0, w*4/5, h/3+1), cabin)
	// Windows.
	sp.Fill(geom.R(w/4, h/12, w*3/4, h/3), img.RGB{R: 170, G: 210, B: 235})
	// Wheels.
	wheel := img.RGB{R: 25, G: 25, B: 25}
	r := maxInt(h/6, 1)
	sp.DrawDisc(geom.Pt(w/5, h-r), r, wheel)
	sp.DrawDisc(geom.Pt(w*4/5, h-r), r, wheel)
}

// Palette returns a deterministic, visually distinct color for synthetic
// object index i — VERRO replaces every original object with a synthetic
// one of the same shape and a distinct color (paper Section 2.2.2).
func Palette(i int) img.RGB {
	// Golden-angle hue stepping gives well-spread hues for any count.
	hue := math.Mod(float64(i)*137.50776405, 360)
	sat := 0.75
	val := 0.9
	if i%3 == 1 {
		val = 0.65
	}
	if i%3 == 2 {
		sat = 0.95
	}
	return img.FromHSV(img.HSV{H: hue, S: sat, V: val})
}

// DrawObject composites an object of the given class and color at center
// position pos into frame, scaled by the perspective depth cue, and returns
// the ground-truth bounding box actually covered.
func DrawObject(frame *img.Image, class ObjectClass, color img.RGB, pos geom.Vec, phase float64) geom.Rect {
	s := DepthScale(pos.Y, frame.H)
	w, h := SpriteSize(class, s)
	sp := RenderSprite(class, color, w, h, phase)
	topLeft := geom.Pt(int(math.Round(pos.X))-w/2, int(math.Round(pos.Y))-h/2)
	frame.BlitMasked(sp, topLeft, spriteKey)
	return geom.RectAt(topLeft.X, topLeft.Y, w, h)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
