package scene

import (
	"math"
	"math/rand"

	"verro/internal/geom"
)

// motionKind is the trajectory archetype assigned to an object.
type motionKind int

const (
	motionCross  motionKind = iota // walk straight across the walkable band
	motionDiag                     // enter one edge, exit an adjacent one
	motionLoiter                   // wander around a point, then leave
	motionBrief                    // short appearance near a frame edge
)

// briefFraction is the share of objects given short edge appearances; it
// reproduces the ~20% of objects the paper's videos lose to key-frame
// extraction (objects whose whole lifetime falls between key frames).
const briefFraction = 0.3

// ObjectPlan is the scripted life of one ground-truth object: when it
// enters, how it moves, and when it leaves.
type ObjectPlan struct {
	ID        int
	Class     ObjectClass
	Enter     int // first frame
	Exit      int // last frame (inclusive)
	positions geom.Polyline
}

// PosAt returns the object's center at frame k and whether it is on stage.
func (p *ObjectPlan) PosAt(k int) (geom.Vec, bool) {
	if k < p.Enter || k > p.Exit {
		return geom.Vec{}, false
	}
	return p.positions[k-p.Enter], true
}

// walkBand returns the vertical band in which objects of the style move.
func walkBand(style Style, h int) (top, bot float64) {
	switch style {
	case StyleNightStreet:
		return float64(h) * 0.55, float64(h) * 0.95
	case StyleStreet:
		return float64(h) * 0.60, float64(h) * 0.95
	default: // plaza
		return float64(h) * 0.45, float64(h) * 0.95
	}
}

// PlanObjects scripts n objects over m frames in a w×h scene. Entries are
// spread over the video with jitter so that per-frame densities resemble
// the MOT sequences (a handful to a few dozen objects on screen at once).
func PlanObjects(n, m, w, h int, style Style, class ObjectClass, rng *rand.Rand) []*ObjectPlan {
	plans := make([]*ObjectPlan, 0, n)
	for i := 0; i < n; i++ {
		base := 0
		if n > 1 {
			base = i * m / n
		}
		enter := base + rng.Intn(maxInt(m/(2*n), 1)+4) - 2
		enter = clampInt(enter, 0, m-2)
		plan := planOne(i+1, class, enter, m, w, h, style, rng)
		plans = append(plans, plan)
	}
	return plans
}

// planOne builds a single trajectory.
func planOne(id int, class ObjectClass, enter, m, w, h int, style Style, rng *rand.Rand) *ObjectPlan {
	top, bot := walkBand(style, h)
	kind := motionKind(rng.Intn(3))
	if rng.Float64() < briefFraction {
		kind = motionBrief
	}
	// Speed scales with the scene width so a crossing takes a comparable
	// fraction of the video at any resolution.
	speed := (0.8 + rng.Float64()*1.6) * float64(w) / 256
	if class == Vehicle {
		speed = (2 + rng.Float64()*3) * float64(w) / 256
	}
	if speed < 0.5 {
		speed = 0.5
	}

	var pts geom.Polyline
	switch kind {
	case motionLoiter:
		pts = loiterPath(w, top, bot, speed, rng)
	case motionDiag:
		pts = diagPath(w, top, bot, speed, rng)
	case motionBrief:
		// Brief visitors move quickly: their short lifetimes are what the
		// key-frame extraction legitimately misses.
		pts = briefPath(w, top, bot, speed*2, rng)
	default:
		pts = crossPath(w, top, bot, speed, rng)
	}

	exit := enter + len(pts) - 1
	if exit >= m {
		exit = m - 1
		pts = pts[:exit-enter+1]
	}
	return &ObjectPlan{ID: id, Class: class, Enter: enter, Exit: exit, positions: pts}
}

// crossPath walks straight across the scene with sinusoidal sway.
func crossPath(w int, top, bot, speed float64, rng *rand.Rand) geom.Polyline {
	leftToRight := rng.Intn(2) == 0
	y := top + rng.Float64()*(bot-top)
	sway := 2 + rng.Float64()*6
	swayFreq := 0.02 + rng.Float64()*0.06
	margin := 6.0
	x := -margin
	dir := 1.0
	if !leftToRight {
		x = float64(w) + margin
		dir = -1
	}
	var pts geom.Polyline
	for len(pts) < 8000 {
		pts = append(pts, geom.V(x, y+sway*math.Sin(swayFreq*float64(len(pts)))))
		x += dir * speed
		if x < -margin || x > float64(w)+margin {
			break
		}
	}
	return pts
}

// diagPath enters at a horizontal edge and drifts vertically while
// crossing, exiting on the other side or the bottom.
func diagPath(w int, top, bot, speed float64, rng *rand.Rand) geom.Polyline {
	leftToRight := rng.Intn(2) == 0
	y := top + rng.Float64()*(bot-top)
	vy := (rng.Float64() - 0.5) * speed
	margin := 6.0
	x := -margin
	dir := 1.0
	if !leftToRight {
		x = float64(w) + margin
		dir = -1
	}
	var pts geom.Polyline
	for len(pts) < 8000 {
		pts = append(pts, geom.V(x, y))
		x += dir * speed
		y += vy
		if y < top {
			y, vy = top, -vy
		}
		if y > bot {
			y, vy = bot, -vy
		}
		if x < -margin || x > float64(w)+margin {
			break
		}
	}
	return pts
}

// loiterPath wanders around an anchor with a random walk, then exits via
// the nearest horizontal edge.
func loiterPath(w int, top, bot, speed float64, rng *rand.Rand) geom.Polyline {
	cx := float64(w) * (0.2 + 0.6*rng.Float64())
	cy := top + rng.Float64()*(bot-top)
	dwell := 60 + rng.Intn(240)
	var pts geom.Polyline
	x, y := cx, cy
	heading := rng.Float64() * 2 * math.Pi
	for k := 0; k < dwell; k++ {
		heading += (rng.Float64() - 0.5) * 0.6
		x += math.Cos(heading) * speed * 0.5
		y += math.Sin(heading) * speed * 0.25
		// Stay tethered to the anchor.
		x = geom.ClampF(x, cx-40, cx+40)
		y = geom.ClampF(y, math.Max(top, cy-20), math.Min(bot, cy+20))
		pts = append(pts, geom.V(x, y))
	}
	// Leave towards the nearest edge.
	dir := 1.0
	if x < float64(w)/2 {
		dir = -1
	}
	margin := 6.0
	for len(pts) < 8000 {
		x += dir * speed
		pts = append(pts, geom.V(x, y))
		if x < -margin || x > float64(w)+margin {
			break
		}
	}
	return pts
}

// briefPath is a short appearance near a frame edge: the object steps in,
// lingers a handful of frames and leaves the way it came.
func briefPath(w int, top, bot, speed float64, rng *rand.Rand) geom.Polyline {
	fromLeft := rng.Intn(2) == 0
	y := top + rng.Float64()*(bot-top)
	depth := 8 + rng.Float64()*8 // how far into the frame it gets
	dwell := 2 + rng.Intn(4)
	x := -6.0
	dir := 1.0
	if !fromLeft {
		x = float64(w) + 6
		dir = -1
	}
	var pts geom.Polyline
	// Walk in.
	target := x + dir*depth
	for (dir > 0 && x < target) || (dir < 0 && x > target) {
		pts = append(pts, geom.V(x, y))
		x += dir * speed
	}
	// Dwell.
	for k := 0; k < dwell; k++ {
		pts = append(pts, geom.V(x, y))
	}
	// Walk out.
	for x > -6 && x < float64(w)+6 {
		pts = append(pts, geom.V(x, y))
		x -= dir * speed
	}
	return pts
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
