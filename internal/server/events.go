package server

import (
	"sync"

	"verro/internal/obs"
)

// eventLog is the per-job buffer between a trace's observer callback and any
// number of SSE subscribers. The observer appends synchronously from
// pipeline goroutines; subscribers replay the history from any cursor and
// then block on the condition variable for more. When the job reaches a
// terminal state the runner closes the log and evicts it from the server's
// registry (finishJob), so the registry stays bounded under job churn;
// subscribers attached at that point drain the history they hold a pointer
// to, and later subscribers get a transient closed log rebuilt from the
// manifest — the terminal event, without the progress history.
type eventLog struct {
	mu     sync.Mutex
	cond   *sync.Cond
	events []obs.Event
	done   bool
	state  string // terminal job state once done
	errMsg string
}

func newEventLog() *eventLog {
	l := &eventLog{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// append is the obs.Trace observer callback.
func (l *eventLog) append(e obs.Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
	l.cond.Broadcast()
}

// close marks the job finished; subscribers drain and receive the terminal
// event. Idempotent.
func (l *eventLog) close(state, errMsg string) {
	l.mu.Lock()
	if !l.done {
		l.done = true
		l.state = state
		l.errMsg = errMsg
	}
	l.mu.Unlock()
	l.cond.Broadcast()
}

// wake kicks every waiting subscriber so they can notice their client went
// away (the condition variable cannot watch a context itself).
func (l *eventLog) wake() { l.cond.Broadcast() }

// next blocks until events beyond index cursor exist (returning them and the
// new cursor) or the log is done and drained (returning done=true), or
// cancelled reports true. cancelled is polled only at wake-ups, so callers
// pair next with a goroutine that calls wake when their context ends.
func (l *eventLog) next(cursor int, cancelled func() bool) (evs []obs.Event, newCursor int, done bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if cancelled() {
			return nil, cursor, true
		}
		if cursor < len(l.events) {
			evs = append(evs, l.events[cursor:]...)
			return evs, len(l.events), false
		}
		if l.done {
			return nil, cursor, true
		}
		l.cond.Wait()
	}
}

// terminal reports the job's final state once done.
func (l *eventLog) terminal() (state, errMsg string, done bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.state, l.errMsg, l.done
}

// cursorAfterSeq translates an SSE Last-Event-ID (an event Seq) into a
// replay cursor: the index just past the last buffered event carrying that
// Seq, so a reconnecting client resumes exactly where it left off.
func (l *eventLog) cursorAfterSeq(seq int64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := len(l.events) - 1; i >= 0; i-- {
		if l.events[i].Seq == seq {
			return i + 1
		}
	}
	return 0
}
