package server

import (
	"fmt"
	"os"
	"path/filepath"

	"verro"
	"verro/internal/img"
	"verro/internal/store"
	"verro/internal/vid"
)

// checkpointSink sits between the sanitizer and the raw staging file: after
// every appended render window it syncs the staging file and then persists
// the advanced frame cursor, in that order, so the manifest never promises
// frames the disk does not hold. A kill at any instant therefore loses at
// most one window of work.
type checkpointSink struct {
	raw   *vid.RawStore
	save  func(frames int) error
	after func(frames int) // test hook; nil outside tests
}

func (c *checkpointSink) Append(frames []*img.Image) error {
	if err := c.raw.Append(frames); err != nil {
		return err
	}
	if err := c.raw.Sync(); err != nil {
		return err
	}
	if err := c.save(c.raw.Frames()); err != nil {
		return err
	}
	if c.after != nil {
		c.after(c.raw.Frames())
	}
	return nil
}

// Close is a no-op: the runner owns the staging file's lifecycle (it is
// still needed for the encode pass after the sanitizer closes its sink).
func (c *checkpointSink) Close() error { return nil }

// runJob executes one admitted job to a terminal state. The caller has
// already placed the job's token in s.sem and bumped s.wg.
func (s *Server) runJob(m *store.Manifest) {
	defer s.wg.Done()
	defer func() { <-s.sem }()
	if s.holdStart != nil {
		<-s.holdStart
	}
	l := s.log(m.ID)
	err := s.process(m, l)
	if err != nil {
		m.State = store.StateFailed
		m.Error = err.Error()
		if serr := s.cfg.Store.Save(m); serr != nil {
			// The manifest still says running; a restart will re-run the job
			// from its checkpoint, which is safe (resume is idempotent).
			m.Error = fmt.Sprintf("%v (and saving the failure: %v)", err, serr)
		}
	}
	s.finishJob(m, l)
}

// process runs the pipeline for one job, resuming from the manifest's
// checkpoint. On success the manifest is saved in the done state with the
// privacy ledger and output path filled in.
func (s *Server) process(m *store.Manifest, l *eventLog) error {
	dir, err := s.cfg.Store.Dir(m.ID)
	if err != nil {
		return err
	}
	src, err := verro.OpenVideoSource(m.Input)
	if err != nil {
		return fmt.Errorf("input: %w", err)
	}
	defer src.Close()
	meta := src.Meta()
	if meta.W != m.W || meta.H != m.H || meta.Frames != m.Frames {
		return fmt.Errorf("input %s is now %dx%d/%d frames; admitted as %dx%d/%d — refusing to resume against a changed input",
			m.Input, meta.W, meta.H, meta.Frames, m.W, m.H, m.Frames)
	}

	trace := verro.NewTrace("verrod/" + m.ID)
	trace.Observe(l.append)

	// Tracks: load the provided CSV or run streaming detection+tracking.
	// Both are deterministic, so a resumed job reconstructs the exact same
	// object set the interrupted run saw.
	var tracks *verro.TrackSet
	if m.Tracks != "" {
		tracks, err = verro.LoadTracks(m.Tracks)
		if err != nil {
			return fmt.Errorf("tracks: %w", err)
		}
	} else {
		pcfg := verro.DefaultPipelineConfig()
		pcfg.Trace = trace
		pcfg.WindowFrames = m.Window
		tracks, err = verro.DetectAndTrackStream(src, pcfg)
		if err != nil {
			return err
		}
		if err := src.Reset(); err != nil {
			return err
		}
	}

	cfg := verro.DefaultConfig()
	cfg.Seed = m.Seed
	cfg.Phase1.F = m.F
	cfg.Trace = trace
	cfg.WindowFrames = m.Window
	cfg.Workers = m.Workers
	// The manifest's parameters came off the wire (or back off disk on a
	// resume); nothing downstream may consume them unvalidated. Admission
	// already vetted them, but a manifest is plain JSON anyone could have
	// edited between runs.
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	if m.Eps > 0 {
		// ε→f conversion on a render-free dry run, exactly as the CLI does
		// it. Deterministic for a given seed, so a resumed job lands on the
		// same f the interrupted run used.
		dry := cfg
		dry.Phase2.SkipRender = true
		dry.Trace = nil
		dryRes, err := verro.SanitizeStream(src, tracks, dry, nil)
		if err != nil {
			return fmt.Errorf("dry run: %w", err)
		}
		if err := src.Reset(); err != nil {
			return err
		}
		conv, err := verro.FlipProbability(len(dryRes.Phase1.Picked), m.Eps)
		if err != nil {
			return err
		}
		cfg.Phase1.F = conv
	}
	m.ResolvedF = cfg.Phase1.F

	// Staging: reopen at the checkpoint when resuming (torn tails beyond it
	// are truncated away); a staging file that cannot back its checkpoint is
	// discarded and the job restarts from frame zero.
	staging := filepath.Join(dir, "staging.raw")
	var raw *vid.RawStore
	if m.CheckpointFrames > 0 {
		raw, err = vid.OpenRawStore(staging, m.W, m.H, m.CheckpointFrames)
		if err != nil {
			m.CheckpointFrames = 0
			raw = nil
		}
	}
	if raw == nil {
		raw, err = vid.CreateRawStore(staging, m.W, m.H)
		if err != nil {
			return err
		}
	}
	defer raw.Close()

	start := m.CheckpointFrames
	sink := &checkpointSink{
		raw:   raw,
		save:  func(frames int) error { m.CheckpointFrames = frames; return s.cfg.Store.Save(m) },
		after: s.checkpointHook(m.ID),
	}
	res, err := verro.SanitizeStreamFrom(src, tracks, cfg, sink, start)
	if err != nil {
		return err
	}

	// Encode the complete staging file into the final .vvf. The encode pass
	// always reads from frame zero in one continuous run, so the artifact is
	// byte-identical however many kill/resume cycles the staging went
	// through — and byte-identical to the CLI's -window output.
	outPath := filepath.Join(dir, "output.vvf")
	tmp := outPath + ".tmp"
	out, err := os.Create(tmp)
	if err != nil {
		return err
	}
	// The staging file holds only sanitizer output: checkpointSink is its
	// sole writer, and on resume OpenRawStore re-reads exactly those frames
	// (proven equal to an uninterrupted run by stream_resume_test.go).
	//lint:allow privleak staging contains sanitized frames only; resume equivalence covered by stream_resume_test
	if _, err := raw.EncodeTo(out, verro.StreamOutputMeta(meta), m.Window); err != nil {
		out.Close()
		os.Remove(tmp)
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		os.Remove(tmp)
		return err
	}
	if err := out.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, outPath); err != nil {
		return err
	}

	m.State = store.StateDone
	m.Output = outPath
	m.Epsilon = res.Epsilon
	m.Picked = len(res.Phase1.Picked)
	m.Retained = res.SyntheticTracks.Len()
	m.Ledger = res.Windows
	if err := s.cfg.Store.Save(m); err != nil {
		return err
	}
	// The staging file has served its purpose; its removal is cosmetic (a
	// done manifest never resumes), so a failure here does not fail the job.
	if err := raw.Close(); err == nil {
		os.Remove(staging)
	}
	return nil
}

// checkpointHook returns the test hook bound to a job ID, or nil.
func (s *Server) checkpointHook(id string) func(int) {
	if s.afterCheckpoint == nil {
		return nil
	}
	return func(frames int) { s.afterCheckpoint(id, frames) }
}
