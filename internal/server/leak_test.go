package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"verro"
	"verro/internal/scene"
	"verro/internal/store"
)

// This file is the runtime half of the lifecycle story: the static suite
// (verrolint -life) proves termination and release obligations on the CFG,
// and this harness churns real jobs through the live server — sequential,
// concurrent, with SSE subscribers yanked mid-stream, and resumed from
// checkpoints — then asserts goroutines, file descriptors, and post-GC heap
// all return to the pre-churn baseline. `make test-leak` runs it alone;
// `make nightly` repeats it under the race detector.

// tinyFixture writes the smallest clip the pipeline meaningfully windows:
// two render windows per pass, so resume and SSE progress still exercise
// their paths while a full job stays cheap enough to run hundreds of times.
func tinyFixture(t *testing.T, dir string) (input, tracksCSV string) {
	t.Helper()
	p := scene.Preset{
		Name: "leak", W: 48, H: 36, Frames: 12, Objects: 2,
		FPS: 30, Style: scene.StyleSquare, Class: scene.Pedestrian, Seed: 23,
	}
	g, err := scene.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	input = dir + "/input.vvf"
	if _, err := verro.WriteVideo(input, g.Video); err != nil {
		t.Fatal(err)
	}
	tracksCSV = dir + "/tracks.csv"
	if err := g.Truth.SaveCSV(tracksCSV); err != nil {
		t.Fatal(err)
	}
	return input, tracksCSV
}

// countFDs reports the process's open file descriptors via /proc/self/fd;
// ok is false where that view does not exist (non-Linux).
func countFDs() (n int, ok bool) {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return 0, false
	}
	// The ReadDir call itself holds one fd on the directory.
	return len(ents) - 1, true
}

// quiesce closes idle client connections and gives async teardown
// (connection goroutines, handler watchers) a bounded window to finish,
// polling until the goroutine count is back at or below base.
func quiesce(base int) {
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// heapInUse reports live heap bytes after a full collection.
func heapInUse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// churn drives totalJobs admissions through every lifecycle shape the
// server supports and returns how many jobs actually ran to a terminal
// state (resumed re-runs included).
func churn(t *testing.T, srv *Server, ts *httptest.Server, input, tracksCSV string) int {
	t.Helper()
	ran := 0
	submit := func(seed int64) *store.Manifest {
		t.Helper()
		m, code := postJob(t, ts, jobRequest{Input: input, Tracks: tracksCSV, Seed: seed, Window: 6})
		if code != http.StatusAccepted {
			t.Fatalf("POST = %d after %d jobs", code, ran)
		}
		ran++
		return m
	}

	// Phase 1: sequential — one job at a time, drained between jobs.
	for i := 0; i < 60; i++ {
		submit(int64(i + 1))
		srv.Wait()
	}

	// Phase 2: concurrent — fill every worker slot, drain, repeat.
	for batch := 0; batch < 20; batch++ {
		for slot := 0; slot < cap(srv.sem); slot++ {
			submit(int64(100 + batch))
		}
		srv.Wait()
	}

	// Phase 3: subscribers cancelled mid-stream — each job gets an SSE
	// client that connects and then disconnects while the job is live,
	// exercising the handler's wake-on-context-done teardown.
	for i := 0; i < 40; i++ {
		m := submit(int64(200 + i))
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/jobs/"+m.ID+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		buf := make([]byte, 64)
		resp.Body.Read(buf) // at most one read, then yank the client
		cancel()
		resp.Body.Close()
		srv.Wait()
	}

	// Phase 4: resume churn — rewind finished manifests to the running
	// state (checkpoint cleared: their staging was reaped on success) and
	// let ResumeInterrupted re-run them on the same process.
	ms, err := srv.cfg.Store.List()
	if err != nil {
		t.Fatal(err)
	}
	rewound := 0
	for _, m := range ms {
		if rewound == 40 {
			break
		}
		if m.State != store.StateDone {
			continue
		}
		m.State = store.StateRunning
		m.CheckpointFrames = 0
		if err := srv.cfg.Store.Save(m); err != nil {
			t.Fatal(err)
		}
		rewound++
	}
	n, err := srv.ResumeInterrupted()
	if err != nil {
		t.Fatal(err)
	}
	if n != rewound {
		t.Fatalf("resumed %d jobs, rewound %d", n, rewound)
	}
	ran += n
	srv.Wait()
	return ran
}

// TestChurnNoLeaks is the acceptance harness for lifecycle soundness under
// load: after 200+ jobs in every shape, the process must hold no more
// goroutines, file descriptors, event logs, or (within allocator noise)
// heap than it did before the churn began.
func TestChurnNoLeaks(t *testing.T) {
	if testing.Short() {
		t.Skip("job-churn leak harness; run explicitly via make test-leak")
	}
	input, tracksCSV := tinyFixture(t, t.TempDir())
	srv, ts := newTestServer(t, t.TempDir(), 4)

	// Warm-up: one full job and one completed SSE read populate every lazy
	// singleton (connection pools, store directories) before the baseline.
	m, code := postJob(t, ts, jobRequest{Input: input, Tracks: tracksCSV, Window: 6})
	if code != http.StatusAccepted {
		t.Fatalf("warm-up POST = %d", code)
	}
	srv.Wait()
	resp, err := http.Get(ts.URL + "/jobs/" + m.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	readSSE(t, resp.Body)
	resp.Body.Close()

	quiesce(0)
	baseGoroutines := runtime.NumGoroutine()
	baseFDs, fdOK := countFDs()
	baseHeap := heapInUse()

	ran := churn(t, srv, ts, input, tracksCSV)
	if ran < 200 {
		t.Fatalf("churned only %d jobs, acceptance floor is 200", ran)
	}

	quiesce(baseGoroutines)
	if got := runtime.NumGoroutine(); got > baseGoroutines {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked: %d after churn, %d at baseline\n%s",
			got, baseGoroutines, buf[:runtime.Stack(buf, true)])
	}
	if fdOK {
		got, _ := countFDs()
		if got > baseFDs {
			t.Fatalf("file descriptors leaked: %d after churn, %d at baseline", got, baseFDs)
		}
	}
	if n := logCount(srv); n != 0 {
		t.Fatalf("%d event logs still registered after churn", n)
	}
	// Heap is the coarse tripwire: allocator noise is real, but the class
	// of bug this guards (per-job state retained forever) grows linearly
	// in jobs and clears this margin within a few dozen.
	if got := heapInUse(); got > baseHeap+(8<<20) {
		t.Fatalf("heap grew %d bytes over baseline (%d -> %d)", got-baseHeap, baseHeap, got)
	}
}
