package server

import (
	"net/http"
	"strings"
	"testing"

	"verro/internal/store"
)

// logCount reads the event-log registry size under the server's lock.
func logCount(s *Server) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.logs)
}

// TestEventLogsEvictedOnTerminalState is the regression test for the
// registry leak the lifecycle sweep surfaced: before finishJob, every job
// left its eventLog — the job's entire progress history — in Server.logs
// for the life of the process, so memory grew linearly under job churn.
// Successful and failed jobs must both evict their logs once terminal.
func TestEventLogsEvictedOnTerminalState(t *testing.T) {
	input, tracksCSV := fixture(t, t.TempDir())
	srv, ts := newTestServer(t, t.TempDir(), 2)

	const rounds = 4
	for i := 0; i < rounds; i++ {
		// One job that succeeds and one that fails fast (bogus tracks path
		// passes admission; LoadTracks fails inside the runner).
		good, code := postJob(t, ts, jobRequest{Input: input, Tracks: tracksCSV, Seed: int64(i + 1), Window: 9})
		if code != http.StatusAccepted {
			t.Fatalf("round %d: POST good job = %d", i, code)
		}
		bad, code := postJob(t, ts, jobRequest{Input: input, Tracks: tracksCSV + ".missing", Window: 9})
		if code != http.StatusAccepted {
			t.Fatalf("round %d: POST bad job = %d", i, code)
		}
		srv.Wait()
		if n := logCount(srv); n != 0 {
			t.Fatalf("round %d: %d event logs still registered after all jobs finished", i, n)
		}
		for id, want := range map[string]string{good.ID: string(store.StateDone), bad.ID: string(store.StateFailed)} {
			m, code := getManifest(t, ts, id)
			if code != http.StatusOK || string(m.State) != want {
				t.Fatalf("round %d: job %s state = %v (code %d), want %s", i, id, m, code, want)
			}
		}
	}
}

// TestEventsAfterEvictionStillTerminate: a subscriber connecting after the
// job's log has been evicted must still receive a correct terminal end
// event (served from the manifest), and must not re-register a log that
// nothing would ever evict again.
func TestEventsAfterEvictionStillTerminate(t *testing.T) {
	input, tracksCSV := fixture(t, t.TempDir())
	srv, ts := newTestServer(t, t.TempDir(), 1)
	m, code := postJob(t, ts, jobRequest{Input: input, Tracks: tracksCSV, Window: 9})
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	srv.Wait()
	if n := logCount(srv); n != 0 {
		t.Fatalf("%d event logs registered after the job finished", n)
	}

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/jobs/" + m.ID + "/events")
		if err != nil {
			t.Fatal(err)
		}
		events := readSSE(t, resp.Body)
		resp.Body.Close()
		end := events[len(events)-1]
		if end.event != "end" || !strings.Contains(end.data, `"done"`) {
			t.Fatalf("subscriber %d terminal event: %+v", i, end)
		}
		if n := logCount(srv); n != 0 {
			t.Fatalf("subscriber %d re-registered an event log (%d in registry)", i, n)
		}
	}
}
