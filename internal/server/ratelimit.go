package server

import (
	"math"
	"net"
	"sync"
	"time"
)

// maxBuckets bounds the limiter's per-client state so an address-spoofing
// client cannot grow the map without limit. When the bound is hit, fully
// idle buckets (back at burst capacity, carrying no throttle state) are
// swept first; if none are idle the stalest bucket is evicted — for that
// client the next request starts a fresh bucket, which can only be more
// permissive, never less.
const maxBuckets = 4096

// rateLimiter is a per-client token bucket over POST /jobs: each client
// address accrues rate tokens per second up to burst, and a submission
// spends one. It exists for a different failure mode than the worker
// semaphore — the semaphore bounds how many jobs run, the limiter bounds
// how fast any one client may churn the admission path (manifest writes,
// upload staging, geometry probes), which is work a rejected job performs
// before the semaphore would ever turn it away.
//
// The clock is injected: the lifecycle suite's walltime analyzer reserves
// time.Now for internal/obs and internal/par, so the daemon passes it in
// at the edge (with the lint allow documented there) and tests pass a fake.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity; also a fresh client's opening balance
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time // when tokens was computed
}

func newRateLimiter(rate float64, burst int, now func() time.Time) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		now:     now,
		buckets: make(map[string]*bucket),
	}
}

// allow spends a token for the client if one is available. When it is not,
// allow reports how long the client must wait before a token accrues —
// the Retry-After the handler sends with the 429.
func (rl *rateLimiter) allow(key string) (ok bool, retryAfter time.Duration) {
	t := rl.now()
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b, found := rl.buckets[key]
	if !found {
		if len(rl.buckets) >= maxBuckets {
			rl.evictLocked(t)
		}
		b = &bucket{tokens: rl.burst, last: t}
		rl.buckets[key] = b
	} else {
		elapsed := t.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens = math.Min(rl.burst, b.tokens+elapsed*rl.rate)
		}
		b.last = t
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := (1 - b.tokens) / rl.rate // seconds until one token accrues
	return false, time.Duration(math.Ceil(wait)) * time.Second
}

// evictLocked makes room for one more bucket: drop every fully idle bucket
// (refilled to burst, so removal loses no throttle state), and if that
// frees nothing, drop the bucket with the oldest timestamp.
func (rl *rateLimiter) evictLocked(t time.Time) {
	var (
		oldestKey string
		oldest    time.Time
		dropped   bool
	)
	for key, b := range rl.buckets {
		if b.tokens+t.Sub(b.last).Seconds()*rl.rate >= rl.burst {
			delete(rl.buckets, key)
			dropped = true
			continue
		}
		if oldestKey == "" || b.last.Before(oldest) {
			oldestKey, oldest = key, b.last
		}
	}
	if !dropped && oldestKey != "" {
		delete(rl.buckets, oldestKey)
	}
}

// clientKey buckets requests by remote host, ignoring the ephemeral port so
// one client cannot mint fresh buckets per connection.
func clientKey(remoteAddr string) string {
	if host, _, err := net.SplitHostPort(remoteAddr); err == nil {
		return host
	}
	return remoteAddr
}
