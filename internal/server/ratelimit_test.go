package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"verro/internal/store"
)

// fakeClock is a hand-advanced clock so limiter tests never sleep.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestRateLimiterBurstAndRefill(t *testing.T) {
	clk := newFakeClock()
	rl := newRateLimiter(1, 3, clk.now) // 1 token/s, burst 3

	for i := 0; i < 3; i++ {
		if ok, _ := rl.allow("a"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, retry := rl.allow("a")
	if ok {
		t.Fatal("request beyond burst allowed")
	}
	if retry != time.Second {
		t.Fatalf("retryAfter = %v, want 1s (empty bucket, 1 token/s)", retry)
	}

	// A different client has its own bucket.
	if ok, _ := rl.allow("b"); !ok {
		t.Fatal("fresh client denied while another is throttled")
	}

	// Half a second accrues half a token — still denied, shorter wait.
	clk.advance(500 * time.Millisecond)
	if ok, retry = rl.allow("a"); ok || retry != time.Second {
		t.Fatalf("after 0.5s: ok=%v retry=%v, want denied with ceil(0.5s)=1s", ok, retry)
	}
	clk.advance(500 * time.Millisecond)
	if ok, _ = rl.allow("a"); !ok {
		t.Fatal("token accrued after a full second but request denied")
	}
	// The bucket never overfills past burst: after a long idle stretch the
	// client gets exactly burst tokens, not rate*idle.
	clk.advance(time.Hour)
	granted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := rl.allow("a"); ok {
			granted++
		}
	}
	if granted != 3 {
		t.Fatalf("after long idle, %d requests granted, want burst=3", granted)
	}
}

// TestRateLimiterBucketBound: the per-client map cannot grow past
// maxBuckets, idle buckets are swept first, and an actively-throttled
// client survives the sweep.
func TestRateLimiterBucketBound(t *testing.T) {
	clk := newFakeClock()
	rl := newRateLimiter(1, 1, clk.now)

	rl.allow("hot") // drained: holds real throttle state
	for i := 0; i < maxBuckets+64; i++ {
		rl.allow(fmt.Sprintf("client-%d", i))
		clk.advance(2 * time.Second) // each previous bucket refills to burst
	}
	rl.mu.Lock()
	n := len(rl.buckets)
	rl.mu.Unlock()
	if n > maxBuckets {
		t.Fatalf("bucket map grew to %d, bound is %d", n, maxBuckets)
	}
	// An evicted client only ever becomes more permissive: its next request
	// opens a fresh bucket at burst rather than resuming a penalty.
	if ok, _ := rl.allow("hot"); !ok {
		t.Fatal("returning client denied; a fresh bucket must open at burst")
	}
}

func TestNewRequiresClockWithRate(t *testing.T) {
	fs, err := store.NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Store: fs, Rate: 2}); err == nil {
		t.Fatal("New accepted Rate > 0 without a Now clock")
	}
	if _, err := New(Config{Store: fs, Rate: 2, Now: newFakeClock().now}); err != nil {
		t.Fatalf("New rejected a valid rate config: %v", err)
	}
}

// TestSubmitRateLimited drives the HTTP edge: a client inside its burst gets
// normal admission handling, the one past it gets 429 with Retry-After —
// before the body is read, so even malformed submissions spend a token.
func TestSubmitRateLimited(t *testing.T) {
	fs, err := store.NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	srv, err := New(Config{Store: fs, MaxJobs: 1, Rate: 1, Burst: 2, Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	post := func() *http.Response {
		t.Helper()
		// Malformed body: admission fails with 400, which still spends a
		// token — the limiter meters attempts, not successes.
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader("{"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	for i := 0; i < 2; i++ {
		if resp := post(); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("burst request %d = %d, want 400 (past the limiter, failing admission)", i, resp.StatusCode)
		}
	}
	resp := post()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate request = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	clk.advance(time.Second)
	if resp := post(); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("after refill = %d, want 400 again", resp.StatusCode)
	}
}
