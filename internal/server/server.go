// Package server implements verrod's HTTP job API: sanitization as a
// service over the streaming pipeline, with window-granularity
// checkpointing so a killed server resumes half-finished videos on restart
// and still produces output byte-identical to an uninterrupted run.
//
// Endpoints (Go 1.22 method/path patterns):
//
//	POST /jobs              submit a job (JSON body, or octet-stream upload)
//	GET  /jobs              list all jobs (persisted manifests)
//	GET  /jobs/{id}         one job's manifest: state, checkpoint, ledger
//	GET  /jobs/{id}/events  live progress as Server-Sent Events
//	GET  /jobs/{id}/output  the final sanitized .vvf
//
// Jobs run on a bounded worker fleet: at most MaxJobs execute concurrently,
// each on its own scoped worker pool, and a POST finding every slot taken is
// rejected with 429 rather than queued — the caller owns retry policy.
// Progress events come straight from the pipeline's observability spans
// (internal/obs) via a trace observer; no polling loop sits between the
// sanitizer and the SSE stream.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"verro"
	"verro/internal/store"
)

// Config assembles a Server.
type Config struct {
	// Store persists manifests and owns job artifact directories.
	Store *store.FS
	// MaxJobs bounds concurrently executing jobs (default 2).
	MaxJobs int
	// Window is the streaming window (frames) for jobs that do not set one
	// (default 64). Checkpoints land on these boundaries.
	Window int
	// Workers is the per-job pool size for jobs that do not set one
	// (0 = the process-wide default).
	Workers int
	// Rate, when positive, throttles POST /jobs to this many submissions
	// per second per client address (token bucket of depth Burst);
	// 0 disables rate limiting. Requires Now.
	Rate float64
	// Burst is the token-bucket depth when Rate is on (minimum 1): how many
	// submissions a quiet client may burst before the per-second rate
	// applies.
	Burst int
	// Now supplies the rate limiter's clock; required when Rate > 0. It is
	// injected rather than defaulted so this package stays clear of the
	// walltime lint — time.Now is reserved for internal/obs and
	// internal/par, and the daemon passes it in at the edge.
	Now func() time.Time
}

// Server is the verrod job service.
type Server struct {
	cfg Config
	mux *http.ServeMux
	// sem holds one token per running job; admission is a non-blocking send.
	sem chan struct{}
	wg  sync.WaitGroup
	// limiter throttles POST /jobs per client address; nil when Rate is 0.
	limiter *rateLimiter

	mu     sync.Mutex
	nextID int
	logs   map[string]*eventLog

	// afterCheckpoint, when set (tests), runs synchronously after each
	// durable checkpoint with the job's id and staged frame count — the
	// window where a kill is guaranteed recoverable.
	afterCheckpoint func(id string, frames int)
	// holdStart, when set (tests), blocks each admitted job until the
	// channel is closed, pinning slots occupied.
	holdStart chan struct{}
}

// New builds a Server over the given store. Existing manifests are scanned
// so new job IDs continue the sequence across restarts.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("server: nil store")
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 2
	}
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	s := &Server{
		cfg:  cfg,
		sem:  make(chan struct{}, cfg.MaxJobs),
		logs: make(map[string]*eventLog),
	}
	if cfg.Rate > 0 {
		if cfg.Now == nil {
			return nil, fmt.Errorf("server: Rate requires a Now clock")
		}
		s.limiter = newRateLimiter(cfg.Rate, cfg.Burst, cfg.Now)
	}
	ms, err := cfg.Store.List()
	if err != nil {
		return nil, err
	}
	for _, m := range ms {
		var n int
		if _, err := fmt.Sscanf(m.ID, "job-%d", &n); err == nil && n > s.nextID {
			s.nextID = n
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /jobs/{id}/output", s.handleOutput)
	return s, nil
}

// Handler returns the HTTP handler serving the job API.
func (s *Server) Handler() http.Handler { return s.mux }

// Wait blocks until every admitted job has finished. Used by tests and by
// graceful shutdown paths that want jobs drained rather than re-resumed.
func (s *Server) Wait() { s.wg.Wait() }

// ResumeInterrupted restarts every job a previous process left in the
// pending or running state, resuming from its last durable checkpoint. The
// jobs block-wait for worker slots (they were admitted before the crash, so
// admission control does not apply again). Returns how many jobs resumed.
func (s *Server) ResumeInterrupted() (int, error) {
	ms, err := s.cfg.Store.List()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, m := range ms {
		if m.State != store.StateRunning && m.State != store.StatePending {
			continue
		}
		n++
		m := m
		s.wg.Add(1)
		go func() {
			s.sem <- struct{}{}
			s.runJob(m)
		}()
	}
	return n, nil
}

// log returns (creating if needed) the job's event log.
func (s *Server) log(id string) *eventLog {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.logs[id]
	if !ok {
		l = newEventLog()
		s.logs[id] = l
	}
	return l
}

// finishJob closes the job's event log with its terminal state and evicts it
// from the registry. Subscribers already attached hold the log pointer and
// drain the full history; subscribers arriving later are served a transient
// log reconstructed from the manifest (the terminal event survives, the
// progress history does not). Without the eviction the registry grows by one
// log — holding the job's entire event history — per job for the life of the
// process.
func (s *Server) finishJob(m *store.Manifest, l *eventLog) {
	l.close(m.State, m.Error)
	s.mu.Lock()
	delete(s.logs, m.ID)
	s.mu.Unlock()
}

// subscribeLog returns the event log an /events subscriber should drain for
// the manifest it loaded. Live jobs share the runner's registered log.
// Finished jobs get whatever log still lives in the registry, or a transient
// closed one reconstructed from the manifest — re-registering it would
// strand an entry no runner will ever evict again.
func (s *Server) subscribeLog(m *store.Manifest) *eventLog {
	done := m.State == store.StateDone || m.State == store.StateFailed
	s.mu.Lock()
	l, ok := s.logs[m.ID]
	if !ok {
		l = newEventLog()
		if !done {
			s.logs[m.ID] = l
		}
	}
	s.mu.Unlock()
	if done {
		// The job finished (possibly in a previous process, with its live
		// log lost); make sure this log terminates for subscribers.
		l.close(m.State, m.Error)
		return l
	}
	if !ok {
		// We registered a fresh log for what the loaded manifest called a
		// live job. If the job finished between that load and the
		// registration, its runner has already evicted its own log and will
		// never close or evict ours — re-read the state and clean up. (A
		// genuinely live job cannot hit this: its runner registers the log
		// before any terminal save, so the lookup above would have found
		// it.)
		if cur, err := s.cfg.Store.Load(m.ID); err == nil &&
			(cur.State == store.StateDone || cur.State == store.StateFailed) {
			s.finishJob(cur, l)
		}
	}
	return l
}

// allocID hands out the next sequential job ID. Sequential (not random) IDs
// keep the service deterministic and lint-clean: no global randomness, and
// listings sort in submission order.
func (s *Server) allocID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	return fmt.Sprintf("job-%06d", s.nextID)
}

// jobRequest is the POST /jobs JSON body. Uploads pass the same parameters
// as query values instead.
type jobRequest struct {
	// Input is the path to the input .vvf on the server's filesystem
	// (ignored for uploads — the body is the video).
	Input string `json:"input"`
	// Tracks optionally points at an object-tracks CSV; when empty the
	// pipeline's detection+tracking preprocessing runs first.
	Tracks string `json:"tracks,omitempty"`
	// F is the flip probability; Eps > 0 instead fixes a total ε budget
	// that is converted to f on a render-free dry run.
	F   float64 `json:"f,omitempty"`
	Eps float64 `json:"eps,omitempty"`
	// Seed drives all randomness (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Window overrides the server's streaming window for this job.
	Window int `json:"window,omitempty"`
	// Workers overrides the per-job worker-pool size.
	Workers int `json:"workers,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The connection is the only place an encode error could surface; the
	// status line is already gone, so there is nothing useful left to do.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit admits a job: acquire a worker slot (429 when none is free),
// persist the manifest, and start the runner. The input's geometry is
// probed before the manifest is written so resume logic never has to guess.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// The rate check comes before the body is touched: a throttled client
	// gets its 429 without costing the server upload staging or a geometry
	// probe, and without briefly occupying a worker slot.
	if s.limiter != nil {
		if ok, retry := s.limiter.allow(clientKey(r.RemoteAddr)); !ok {
			w.Header().Set("Retry-After", strconv.FormatInt(int64(retry/time.Second), 10))
			writeError(w, http.StatusTooManyRequests,
				"rate limit exceeded for %s; retry in %s", clientKey(r.RemoteAddr), retry)
			return
		}
	}
	select {
	case s.sem <- struct{}{}:
	default:
		writeError(w, http.StatusTooManyRequests,
			"job limit reached (%d running); retry when a slot frees", cap(s.sem))
		return
	}
	m, err := s.admit(r)
	if err != nil {
		<-s.sem //lint:allow ctxflow releasing the slot this handler pushed above; the buffered channel holds our own token, so the receive cannot park
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.wg.Add(1)
	go s.runJob(m)
	writeJSON(w, http.StatusAccepted, m)
}

// admit parses the request, stages an uploaded input if any, probes the
// video geometry, and persists the initial manifest. The caller holds a
// worker slot; on error it releases it and nothing is left behind.
func (s *Server) admit(r *http.Request) (*store.Manifest, error) {
	var req jobRequest
	upload := r.Header.Get("Content-Type") == "application/octet-stream"
	if upload {
		q := r.URL.Query()
		req.Tracks = q.Get("tracks")
		for key, dst := range map[string]*float64{"f": &req.F, "eps": &req.Eps} {
			if v := q.Get(key); v != "" {
				x, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return nil, fmt.Errorf("query %s: %w", key, err)
				}
				*dst = x
			}
		}
		for key, dst := range map[string]*int{"window": &req.Window, "workers": &req.Workers} {
			if v := q.Get(key); v != "" {
				x, err := strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("query %s: %w", key, err)
				}
				*dst = x
			}
		}
		if v := q.Get("seed"); v != "" {
			x, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("query seed: %w", err)
			}
			req.Seed = x
		}
	} else {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			return nil, fmt.Errorf("decode request: %w", err)
		}
		if req.Input == "" {
			return nil, fmt.Errorf("missing input path")
		}
	}
	if req.F == 0 {
		req.F = 0.1
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	if req.Window <= 0 {
		req.Window = s.cfg.Window
	}
	if req.Workers == 0 {
		req.Workers = s.cfg.Workers
	}
	// Vet the privacy parameters at admission so a bad request fails with a
	// 400 now instead of an asynchronous job failure later. The runner
	// re-validates before use (the manifest is plain JSON on disk), but the
	// client-facing contract is enforced here.
	probe := verro.DefaultConfig()
	probe.Phase1.F = req.F
	if err := probe.Validate(); err != nil {
		return nil, err
	}
	if req.Eps != 0 && !(req.Eps > 0 && !math.IsInf(req.Eps, 1)) {
		return nil, fmt.Errorf("eps %v out of range (want finite > 0)", req.Eps)
	}

	id := s.allocID()
	dir, err := s.cfg.Store.Dir(id)
	if err != nil {
		return nil, err
	}
	input := req.Input
	if upload {
		input = filepath.Join(dir, "input.vvf")
		f, err := os.Create(input)
		if err != nil {
			return nil, err
		}
		if _, err := io.Copy(f, r.Body); err != nil {
			f.Close()
			s.discard(id)
			return nil, fmt.Errorf("upload: %w", err)
		}
		if err := f.Close(); err != nil {
			s.discard(id)
			return nil, err
		}
	}

	src, err := verro.OpenVideoSource(input)
	if err != nil {
		s.discard(id)
		return nil, fmt.Errorf("input: %w", err)
	}
	meta := src.Meta()
	src.Close()

	m := &store.Manifest{
		ID: id, State: store.StateRunning,
		Input: input, Tracks: req.Tracks,
		F: req.F, Eps: req.Eps, Seed: req.Seed,
		Window: req.Window, Workers: req.Workers,
		Name: meta.Name, W: meta.W, H: meta.H,
		Frames: meta.Frames, FPS: meta.FPS, Moving: meta.Moving,
	}
	if err := s.cfg.Store.Save(m); err != nil {
		s.discard(id)
		return nil, err
	}
	return m, nil
}

// discard removes a job that failed admission; the ID is burned. Best
// effort: leftovers without a manifest are inert — nothing lists or resumes
// from a directory that never got one.
func (s *Server) discard(id string) {
	_ = s.cfg.Store.Delete(id)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	ms, err := s.cfg.Store.List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if ms == nil {
		ms = []*store.Manifest{}
	}
	writeJSON(w, http.StatusOK, ms)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	m, ok := s.loadJob(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// handleOutput serves the final sanitized artifact. Only the published
// synthetic video ever leaves through here — raw inputs and the staging
// file have no route.
func (s *Server) handleOutput(w http.ResponseWriter, r *http.Request) {
	m, ok := s.loadJob(w, r)
	if !ok {
		return
	}
	if m.State != store.StateDone || m.Output == "" {
		writeError(w, http.StatusConflict, "job %s is %s; no output yet", m.ID, m.State)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeFile(w, r, m.Output)
}

// loadJob resolves {id} to a manifest, writing the error response itself
// when the ID is unsafe or unknown.
func (s *Server) loadJob(w http.ResponseWriter, r *http.Request) (*store.Manifest, bool) {
	id := r.PathValue("id")
	if !store.ValidID(id) {
		writeError(w, http.StatusBadRequest, "invalid job id")
		return nil, false
	}
	m, err := s.cfg.Store.Load(id)
	if os.IsNotExist(err) {
		writeError(w, http.StatusNotFound, "no such job %s", id)
		return nil, false
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return nil, false
	}
	return m, true
}

// handleEvents streams the job's progress as Server-Sent Events: every
// pipeline span opening/closing and counter increment, in trace order, with
// the event Seq as the SSE id so Last-Event-ID resumes a dropped
// subscription without replaying. A terminal "end" event carries the final
// state. Window progress is monotone: render windows open strictly in clip
// order (the coordinator emits them sequentially), and on a resumed job the
// first window event starts at the restored checkpoint.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	m, ok := s.loadJob(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	l := s.subscribeLog(m)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ctx := r.Context()
	go func() {
		// A cond.Wait cannot watch the client connection; kick waiters when
		// it goes away so the handler returns.
		<-ctx.Done()
		l.wake()
	}()

	cursor := 0
	if lastID := r.Header.Get("Last-Event-ID"); lastID != "" {
		if seq, err := strconv.ParseInt(lastID, 10, 64); err == nil {
			cursor = l.cursorAfterSeq(seq)
		}
	}
	for {
		evs, next, done := l.next(cursor, func() bool { return ctx.Err() != nil })
		if ctx.Err() != nil {
			return
		}
		cursor = next
		for _, e := range evs {
			data, err := json.Marshal(e)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Kind, data)
		}
		fl.Flush()
		if done {
			state, errMsg, _ := l.terminal()
			end := map[string]string{"state": state}
			if errMsg != "" {
				end["error"] = errMsg
			}
			data, _ := json.Marshal(end)
			fmt.Fprintf(w, "event: end\ndata: %s\n\n", data)
			fl.Flush()
			return
		}
	}
}
