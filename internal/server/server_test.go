package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"verro"
	"verro/internal/scene"
	"verro/internal/store"
)

// fixture writes a small benchmark clip and its ground-truth tracks into
// dir. 36 frames with a window of 9 gives four render windows — enough to
// cut a resume in the middle.
func fixture(t *testing.T, dir string) (input, tracksCSV string) {
	t.Helper()
	p := scene.Preset{
		Name: "srv", W: 96, H: 72, Frames: 36, Objects: 4,
		FPS: 30, Style: scene.StyleSquare, Class: scene.Pedestrian, Seed: 17,
	}
	g, err := scene.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	input = filepath.Join(dir, "input.vvf")
	if _, err := verro.WriteVideo(input, g.Video); err != nil {
		t.Fatal(err)
	}
	tracksCSV = filepath.Join(dir, "tracks.csv")
	if err := g.Truth.SaveCSV(tracksCSV); err != nil {
		t.Fatal(err)
	}
	return input, tracksCSV
}

// cliEquivalent runs the same sanitization the CLI's -window path would and
// returns the output bytes — the reference every server artifact must match
// byte for byte.
func cliEquivalent(t *testing.T, input, tracksCSV string, f float64, seed int64, window int) []byte {
	t.Helper()
	src, err := verro.OpenVideoSource(input)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	tracks, err := verro.LoadTracks(tracksCSV)
	if err != nil {
		t.Fatal(err)
	}
	cfg := verro.DefaultConfig()
	cfg.Phase1.F = f
	cfg.Seed = seed
	cfg.WindowFrames = window
	out := filepath.Join(t.TempDir(), "ref.vvf")
	sink, err := verro.NewVideoSink(out, verro.StreamOutputMeta(src.Meta()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verro.SanitizeStream(src, tracks, cfg, sink); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func newTestServer(t *testing.T, root string, maxJobs int) (*Server, *httptest.Server) {
	t.Helper()
	fs, err := store.NewFS(root)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: fs, MaxJobs: maxJobs, Window: 9})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJob(t *testing.T, ts *httptest.Server, req jobRequest) (*store.Manifest, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode
	}
	var m store.Manifest
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return &m, resp.StatusCode
}

func getManifest(t *testing.T, ts *httptest.Server, id string) (*store.Manifest, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode
	}
	var m store.Manifest
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return &m, resp.StatusCode
}

func TestJobLifecycle(t *testing.T) {
	input, tracksCSV := fixture(t, t.TempDir())
	root := t.TempDir()
	srv, ts := newTestServer(t, root, 2)

	m, code := postJob(t, ts, jobRequest{Input: input, Tracks: tracksCSV, F: 0.1, Seed: 5, Window: 9})
	if code != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d", code)
	}
	if m.ID != "job-000001" || m.State != store.StateRunning || m.Frames != 36 {
		t.Fatalf("admission manifest: %+v", m)
	}
	srv.Wait()

	got, code := getManifest(t, ts, m.ID)
	if code != http.StatusOK {
		t.Fatalf("GET /jobs/%s = %d", m.ID, code)
	}
	if got.State != store.StateDone {
		t.Fatalf("job finished %s (%s), want done", got.State, got.Error)
	}
	if got.CheckpointFrames != 36 || got.Epsilon <= 0 || len(got.Ledger) != 4 {
		t.Fatalf("outcome: checkpoint=%d eps=%v ledger=%d", got.CheckpointFrames, got.Epsilon, len(got.Ledger))
	}

	resp, err := http.Get(ts.URL + "/jobs/" + m.ID + "/output")
	if err != nil {
		t.Fatal(err)
	}
	artifact, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET output: %d %v", resp.StatusCode, err)
	}
	want := cliEquivalent(t, input, tracksCSV, 0.1, 5, 9)
	if !bytes.Equal(artifact, want) {
		t.Fatalf("served artifact (%d bytes) differs from the CLI-equivalent output (%d bytes)", len(artifact), len(want))
	}

	if _, err := os.Stat(filepath.Join(root, m.ID, "staging.raw")); !os.IsNotExist(err) {
		t.Fatalf("staging file survived a completed job: %v", err)
	}

	listResp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []*store.Manifest
	err = json.NewDecoder(listResp.Body).Decode(&list)
	listResp.Body.Close()
	if err != nil || len(list) != 1 || list[0].ID != m.ID {
		t.Fatalf("GET /jobs: %v (%d entries)", err, len(list))
	}

	if _, code := getManifest(t, ts, "job-999999"); code != http.StatusNotFound {
		t.Fatalf("GET unknown job = %d, want 404", code)
	}
}

// TestAdmissionControl: with every worker slot pinned, a new POST is
// rejected with 429 and leaves no trace; once a slot frees, submission
// works again.
func TestAdmissionControl(t *testing.T) {
	input, tracksCSV := fixture(t, t.TempDir())
	srv, ts := newTestServer(t, t.TempDir(), 1)
	hold := make(chan struct{})
	srv.holdStart = hold

	m1, code := postJob(t, ts, jobRequest{Input: input, Tracks: tracksCSV, Window: 9})
	if code != http.StatusAccepted {
		t.Fatalf("first POST = %d", code)
	}
	if _, code := postJob(t, ts, jobRequest{Input: input, Tracks: tracksCSV, Window: 9}); code != http.StatusTooManyRequests {
		t.Fatalf("POST above the job limit = %d, want 429", code)
	}

	close(hold)
	srv.Wait()
	if got, _ := getManifest(t, ts, m1.ID); got.State != store.StateDone {
		t.Fatalf("held job finished %s (%s)", got.State, got.Error)
	}
	m3, code := postJob(t, ts, jobRequest{Input: input, Tracks: tracksCSV, Window: 9})
	if code != http.StatusAccepted {
		t.Fatalf("POST after a slot freed = %d", code)
	}
	srv.Wait()
	if got, _ := getManifest(t, ts, m3.ID); got.State != store.StateDone {
		t.Fatalf("post-429 job finished %s (%s)", got.State, got.Error)
	}
	// The rejected submission must not have burned a manifest.
	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []*store.Manifest
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil || len(list) != 2 {
		t.Fatalf("job list after a 429: %v (%d entries, want 2)", err, len(list))
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	id    string
	event string
	data  string
}

func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var (
		out []sseEvent
		cur sseEvent
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				out = append(out, cur)
			}
			if cur.event == "end" {
				return out
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			cur.id = line[4:]
		case strings.HasPrefix(line, "event: "):
			cur.event = line[7:]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[6:]
		}
	}
	t.Fatalf("SSE stream ended without an end event (%d events)", len(out))
	return nil
}

// TestEventsMonotonicWindowProgress: an SSE subscriber sees the render
// windows open in strictly increasing clip order, and the stream terminates
// with an end event carrying the final state.
func TestEventsMonotonicWindowProgress(t *testing.T) {
	input, tracksCSV := fixture(t, t.TempDir())
	srv, ts := newTestServer(t, t.TempDir(), 1)
	m, code := postJob(t, ts, jobRequest{Input: input, Tracks: tracksCSV, Seed: 3, Window: 9})
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}

	resp, err := http.Get(ts.URL + "/jobs/" + m.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events := readSSE(t, resp.Body)
	srv.Wait()

	// The pipeline walks the clip once per pass (analysis, then phase2
	// rendering); within each pass the window spans must open in strictly
	// increasing clip order.
	last := map[string]int{}
	windows := map[string]int{}
	for _, e := range events {
		if e.event != "span_start" {
			continue
		}
		var ev struct {
			Span   string `json:"span"`
			Parent string `json:"parent"`
		}
		if err := json.Unmarshal([]byte(e.data), &ev); err != nil {
			t.Fatalf("bad event data %q: %v", e.data, err)
		}
		if !strings.HasPrefix(ev.Span, "window@") {
			continue
		}
		at, err := strconv.Atoi(strings.TrimPrefix(ev.Span, "window@"))
		if err != nil {
			t.Fatalf("window span %q", ev.Span)
		}
		if prev, seen := last[ev.Parent]; seen && at <= prev {
			t.Fatalf("%s window progress went backwards: %d after %d", ev.Parent, at, prev)
		}
		last[ev.Parent] = at
		windows[ev.Parent]++
	}
	for _, pass := range []string{"analysis", "phase2"} {
		if windows[pass] != 4 {
			t.Fatalf("saw %d %s window spans, want 4 (all: %v)", windows[pass], pass, windows)
		}
	}
	end := events[len(events)-1]
	if end.event != "end" || !strings.Contains(end.data, `"done"`) {
		t.Fatalf("terminal event: %+v", end)
	}

	// A reconnect with Last-Event-ID replays only the suffix.
	req, err := http.NewRequest("GET", ts.URL+"/jobs/"+m.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", events[len(events)-2].id)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	tail := readSSE(t, resp2.Body)
	resp2.Body.Close()
	if len(tail) >= len(events) {
		t.Fatalf("reconnect replayed %d events, full history is %d", len(tail), len(events))
	}
}

// copyFile is a helper for the kill snapshot.
func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestKillAndResumeByteIdentical is the acceptance test for the checkpoint
// design: a server killed mid-job (simulated by snapshotting the job
// directory at a durable checkpoint, plus a torn partial frame a real kill
// could leave) and restarted over that state resumes from the checkpoint
// and produces a final .vvf byte-identical to the uninterrupted run's.
func TestKillAndResumeByteIdentical(t *testing.T) {
	input, tracksCSV := fixture(t, t.TempDir())
	root1, snapRoot := t.TempDir(), t.TempDir()

	srv1, ts1 := newTestServer(t, root1, 1)
	srv1.afterCheckpoint = func(id string, frames int) {
		if frames != 18 {
			return
		}
		// Freeze the on-disk job state exactly as a kill at this instant
		// would leave it: the synced staging, the manifest promising 18
		// frames — and a torn half-written frame beyond the checkpoint.
		copyFile(t, filepath.Join(root1, id, "manifest.json"), filepath.Join(snapRoot, id, "manifest.json"))
		copyFile(t, filepath.Join(root1, id, "staging.raw"), filepath.Join(snapRoot, id, "staging.raw"))
		f, err := os.OpenFile(filepath.Join(snapRoot, id, "staging.raw"), os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Write(bytes.Repeat([]byte{0xAB}, 97)); err != nil {
			t.Error(err)
		}
		f.Close()
	}

	m, code := postJob(t, ts1, jobRequest{Input: input, Tracks: tracksCSV, F: 0.1, Seed: 5, Window: 9})
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	srv1.Wait()
	if got, _ := getManifest(t, ts1, m.ID); got.State != store.StateDone {
		t.Fatalf("uninterrupted run finished %s (%s)", got.State, got.Error)
	}
	uninterrupted, err := os.ReadFile(filepath.Join(root1, m.ID, "output.vvf"))
	if err != nil {
		t.Fatal(err)
	}

	// Sanity: the snapshot captured a half-done job.
	snapFS, err := store.NewFS(snapRoot)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := snapFS.Load(m.ID)
	if err != nil {
		t.Fatalf("snapshot manifest: %v", err)
	}
	if snap.State != store.StateRunning || snap.CheckpointFrames != 18 {
		t.Fatalf("snapshot: state=%s checkpoint=%d, want running/18", snap.State, snap.CheckpointFrames)
	}

	// "Restart" the server over the snapshot and resume.
	srv2, ts2 := newTestServer(t, snapRoot, 1)
	n, err := srv2.ResumeInterrupted()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("ResumeInterrupted resumed %d jobs, want 1", n)
	}
	srv2.Wait()

	resumed, code := getManifest(t, ts2, m.ID)
	if code != http.StatusOK || resumed.State != store.StateDone {
		t.Fatalf("resumed job: %d %s (%s)", code, resumed.State, resumed.Error)
	}
	artifact, err := os.ReadFile(filepath.Join(snapRoot, m.ID, "output.vvf"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(artifact, uninterrupted) {
		t.Fatalf("resumed output (%d bytes) is not byte-identical to the uninterrupted run (%d bytes)",
			len(artifact), len(uninterrupted))
	}
	orig, _ := getManifest(t, ts1, m.ID)
	if resumed.Epsilon != orig.Epsilon || len(resumed.Ledger) != len(orig.Ledger) {
		t.Fatalf("resumed ledger diverged: eps %v/%v, windows %d/%d",
			resumed.Epsilon, orig.Epsilon, len(resumed.Ledger), len(orig.Ledger))
	}
	for i, w := range resumed.Ledger {
		if w != orig.Ledger[i] {
			t.Fatalf("ledger window %d: %+v vs %+v", i, w, orig.Ledger[i])
		}
	}
}

// TestUploadJob: an octet-stream POST stages the body as the job's input
// and produces the same artifact a path-based submission would.
func TestUploadJob(t *testing.T) {
	input, tracksCSV := fixture(t, t.TempDir())
	srv, ts := newTestServer(t, t.TempDir(), 1)

	data, err := os.ReadFile(input)
	if err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("%s/jobs?f=0.1&seed=5&window=9&tracks=%s", ts.URL, tracksCSV)
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var m store.Manifest
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("upload POST: %d %v", resp.StatusCode, err)
	}
	srv.Wait()

	got, _ := getManifest(t, ts, m.ID)
	if got.State != store.StateDone {
		t.Fatalf("upload job finished %s (%s)", got.State, got.Error)
	}
	outResp, err := http.Get(ts.URL + "/jobs/" + m.ID + "/output")
	if err != nil {
		t.Fatal(err)
	}
	artifact, err := io.ReadAll(outResp.Body)
	outResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if want := cliEquivalent(t, input, tracksCSV, 0.1, 5, 9); !bytes.Equal(artifact, want) {
		t.Fatalf("uploaded job's artifact differs from the path-based equivalent")
	}
}

// TestSubmitValidation: a bad submission returns 400 and releases its
// worker slot.
func TestSubmitValidation(t *testing.T) {
	input, tracksCSV := fixture(t, t.TempDir())
	srv, ts := newTestServer(t, t.TempDir(), 1)

	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty submission = %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"input":"/does/not/exist.vvf"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing input file = %d, want 400", resp.StatusCode)
	}

	// Both failures released their slots: a real job still fits.
	if _, code := postJob(t, ts, jobRequest{Input: input, Tracks: tracksCSV, Window: 9}); code != http.StatusAccepted {
		t.Fatalf("POST after failed admissions = %d", code)
	}
	srv.Wait()
}
