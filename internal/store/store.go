// Package store persists sanitization-job state for verrod. Each job owns a
// directory holding a JSON manifest (parameters, geometry, checkpoint
// cursor, outcome) plus its artifacts: the crash-tolerant raw staging file
// while the job runs, and the final .vvf once it completes. Every manifest
// write goes through an atomic temp-file-plus-rename, so a server killed at
// any instant leaves either the previous manifest or the new one — never a
// torn half of each — which is what makes window-granularity checkpointing
// trustworthy: the manifest's checkpoint count is always a frame count the
// synced staging file actually holds.
//
// The package deliberately records no wall-clock timestamps: a manifest is
// a pure function of the job's parameters and progress, so resume logic and
// tests can compare manifests byte for byte.
package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"verro/internal/core"
)

// Job states recorded in a manifest.
const (
	// StatePending: accepted, not yet started (queued for a worker slot).
	StatePending = "pending"
	// StateRunning: a worker owns the job. A manifest found in this state at
	// server startup means the previous process died mid-job — the job is
	// resumable from its checkpoint.
	StateRunning = "running"
	// StateDone: the final artifact is in place; the ledger is complete.
	StateDone = "done"
	// StateFailed: the job errored; Error carries the cause.
	StateFailed = "failed"
)

// Manifest is the persisted record of one sanitization job.
type Manifest struct {
	ID    string `json:"id"`
	State string `json:"state"`

	// Request parameters.
	Input   string  `json:"input"`            // path to the input .vvf
	Tracks  string  `json:"tracks,omitempty"` // optional tracks CSV; empty = detect
	F       float64 `json:"f"`                // flip probability (ignored when Eps > 0)
	Eps     float64 `json:"eps,omitempty"`    // total ε budget; converted to f on a dry run
	Seed    int64   `json:"seed"`
	Window  int     `json:"window"`            // streaming window frames
	Workers int     `json:"workers,omitempty"` // per-job pool size (0 = process default)

	// Input geometry, probed at admission so restarts need not trust the
	// input file to still parse before deciding how to resume.
	Name   string  `json:"name"`
	W      int     `json:"w"`
	H      int     `json:"h"`
	Frames int     `json:"frames"`
	FPS    float64 `json:"fps"`
	Moving bool    `json:"moving,omitempty"`

	// CheckpointFrames is the resume cursor: how many output frames are
	// durably staged. Advanced only after the staging file is synced, always
	// a multiple of Window (or the final frame count).
	CheckpointFrames int `json:"checkpoint_frames"`

	// Outcome, populated when State is done (or failed, for Error).
	ResolvedF float64            `json:"resolved_f,omitempty"` // f actually used after ε conversion
	Epsilon   float64            `json:"epsilon,omitempty"`
	Picked    int                `json:"picked,omitempty"`   // key frames given budget
	Retained  int                `json:"retained,omitempty"` // synthetic objects rendered
	Output    string             `json:"output,omitempty"`   // final artifact path
	Ledger    []core.WindowSpend `json:"ledger,omitempty"`   // per-window privacy spend
	Error     string             `json:"error,omitempty"`
}

// Store persists job manifests and owns each job's artifact directory.
type Store interface {
	// Save durably persists the manifest (atomic for FS).
	Save(m *Manifest) error
	// Load reads one job's manifest.
	Load(id string) (*Manifest, error)
	// List returns every stored manifest, sorted by ID.
	List() ([]*Manifest, error)
	// Dir returns (creating if needed) the job's artifact directory.
	Dir(id string) (string, error)
	// Delete removes the job's manifest and artifacts.
	Delete(id string) error
}

// FS is the filesystem Store: one directory per job under root.
type FS struct {
	root string
}

// NewFS opens (creating if needed) a filesystem store rooted at root.
func NewFS(root string) (*FS, error) {
	if root == "" {
		return nil, fmt.Errorf("store: empty root")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	return &FS{root: root}, nil
}

// Root returns the store's base directory.
func (s *FS) Root() string { return s.root }

// ValidID reports whether id is safe to use as a path component: job IDs
// come back from clients in URLs, so anything that could traverse out of
// the store root is rejected before it touches the filesystem.
func ValidID(id string) bool {
	if id == "" || id == "." || id == ".." || len(id) > 128 {
		return false
	}
	return !strings.ContainsAny(id, "/\\")
}

func (s *FS) dir(id string) string { return filepath.Join(s.root, id) }

// Dir implements Store.
func (s *FS) Dir(id string) (string, error) {
	if !ValidID(id) {
		return "", fmt.Errorf("store: invalid job id %q", id)
	}
	d := s.dir(id)
	if err := os.MkdirAll(d, 0o755); err != nil {
		return "", err
	}
	return d, nil
}

// Save implements Store: the manifest is written to a temp file in the job
// directory, synced, and renamed over manifest.json — atomic on POSIX, so a
// crash leaves either the old manifest or the new one intact.
func (s *FS) Save(m *Manifest) error {
	if m == nil {
		return fmt.Errorf("store: nil manifest")
	}
	dir, err := s.Dir(m.ID)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode manifest %s: %w", m.ID, err)
	}
	data = append(data, '\n')
	tmp := filepath.Join(dir, "manifest.json.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "manifest.json"))
}

// Load implements Store.
func (s *FS) Load(id string) (*Manifest, error) {
	if !ValidID(id) {
		return nil, fmt.Errorf("store: invalid job id %q", id)
	}
	data, err := os.ReadFile(filepath.Join(s.dir(id), "manifest.json"))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: manifest %s: %w", id, err)
	}
	if m.ID != id {
		return nil, fmt.Errorf("store: manifest %s claims id %q", id, m.ID)
	}
	return &m, nil
}

// List implements Store: every directory under root holding a readable
// manifest, sorted by ID. Directories without a manifest (e.g. a job killed
// between Dir and the first Save) are skipped, as is the leftover temp file
// of an interrupted Save.
func (s *FS) List() ([]*Manifest, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, err
	}
	var out []*Manifest
	for _, e := range entries {
		if !e.IsDir() || !ValidID(e.Name()) {
			continue
		}
		m, err := s.Load(e.Name())
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, err
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Delete implements Store.
func (s *FS) Delete(id string) error {
	if !ValidID(id) {
		return fmt.Errorf("store: invalid job id %q", id)
	}
	return os.RemoveAll(s.dir(id))
}
