package store

import (
	"os"
	"path/filepath"
	"testing"

	"verro/internal/core"
)

func TestManifestRoundTrip(t *testing.T) {
	s, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := &Manifest{
		ID: "job-000001", State: StateRunning,
		Input: "/data/in.vvf", Tracks: "/data/tracks.csv",
		F: 0.1, Eps: 2.5, Seed: 42, Window: 16, Workers: 3,
		Name: "clip", W: 320, H: 240, Frames: 128, FPS: 30, Moving: true,
		CheckpointFrames: 48,
		Ledger: []core.WindowSpend{
			{Start: 0, Frames: 16, Picked: 2, Epsilon: 1.25},
			{Start: 16, Frames: 16, Picked: 1, Epsilon: 0.75},
		},
	}
	if err := s.Save(m); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != m.ID || got.State != m.State || got.Input != m.Input ||
		got.CheckpointFrames != m.CheckpointFrames || got.Frames != m.Frames ||
		got.Eps != m.Eps || got.Seed != m.Seed || len(got.Ledger) != 2 ||
		got.Ledger[1] != m.Ledger[1] {
		t.Fatalf("round trip mangled the manifest: %+v", got)
	}
	// A Save leaves no temp file behind; the rename completed.
	if _, err := os.Stat(filepath.Join(s.Root(), m.ID, "manifest.json.tmp")); !os.IsNotExist(err) {
		t.Fatalf("temp file survived the atomic save: %v", err)
	}
}

func TestStoreRejectsUnsafeIDs(t *testing.T) {
	s, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", ".", "..", "../escape", "a/b", `a\b`} {
		if ValidID(id) {
			t.Errorf("ValidID(%q) = true", id)
		}
		if _, err := s.Load(id); err == nil {
			t.Errorf("Load(%q) accepted an unsafe id", id)
		}
		if _, err := s.Dir(id); err == nil {
			t.Errorf("Dir(%q) accepted an unsafe id", id)
		}
		if err := s.Delete(id); err == nil {
			t.Errorf("Delete(%q) accepted an unsafe id", id)
		}
	}
	if !ValidID("job-000001") {
		t.Error("ValidID rejected a normal id")
	}
}

func TestListSortedAndSkipsIncomplete(t *testing.T) {
	s, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"job-000003", "job-000001", "job-000002"} {
		if err := s.Save(&Manifest{ID: id, State: StateDone}); err != nil {
			t.Fatal(err)
		}
	}
	// A directory without a manifest (killed between Dir and first Save)
	// must not break listing.
	if _, err := s.Dir("job-000004"); err != nil {
		t.Fatal(err)
	}
	ms, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("List returned %d manifests, want 3", len(ms))
	}
	for i, want := range []string{"job-000001", "job-000002", "job-000003"} {
		if ms[i].ID != want {
			t.Fatalf("List[%d] = %s, want %s", i, ms[i].ID, want)
		}
	}
}

func TestLoadRejectsMismatchedAndCorrupt(t *testing.T) {
	s, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dir, err := s.Dir("job-000009")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("job-000009"); err == nil {
		t.Fatal("Load accepted a corrupt manifest")
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(`{"id":"other"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("job-000009"); err == nil {
		t.Fatal("Load accepted a manifest claiming another id")
	}
}

func TestDeleteRemovesArtifacts(t *testing.T) {
	s, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(&Manifest{ID: "job-000005", State: StateFailed, Error: "boom"}); err != nil {
		t.Fatal(err)
	}
	dir, err := s.Dir("job-000005")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "staging.raw"), []byte("xxx"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("job-000005"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatal("Delete left the job directory behind")
	}
	ms, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("List after Delete returned %d manifests", len(ms))
	}
}
