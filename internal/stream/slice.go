package stream

import (
	"fmt"
	"io"

	"verro/internal/img"
)

// SliceSource adapts an in-memory frame slice to the Source interface. It
// does not copy frames, so it offers no memory saving by itself — it exists
// so the windowed drivers can be run (and equivalence-tested) against
// already-decoded videos through the exact code path a file source uses.
type SliceSource struct {
	meta   Meta
	frames []*img.Image
	pos    int
}

// NewSliceSource wraps frames under the given metadata. meta.Frames is
// overridden with len(frames) so the two can never disagree.
func NewSliceSource(meta Meta, frames []*img.Image) *SliceSource {
	meta.Frames = len(frames)
	return &SliceSource{meta: meta, frames: frames}
}

// Meta implements Source.
func (s *SliceSource) Meta() Meta { return s.meta }

// Next implements Source.
func (s *SliceSource) Next(budget int) ([]*img.Image, int, error) {
	if s.pos >= len(s.frames) {
		return nil, s.pos, io.EOF
	}
	end := len(s.frames)
	if budget > 0 && s.pos+budget < end {
		end = s.pos + budget
	}
	start := s.pos
	out := s.frames[start:end]
	s.pos = end
	return out, start, nil
}

// Reset implements Source.
func (s *SliceSource) Reset() error {
	s.pos = 0
	return nil
}

// Close implements Source.
func (s *SliceSource) Close() error { return nil }

// CollectSink gathers output windows into an in-memory frame slice — the
// sink behind the in-memory streaming path (Config.WindowFrames with a
// *vid.Video input), where the caller wants the whole synthetic video back.
type CollectSink struct {
	Frames []*img.Image
	closed bool
}

// Append implements Sink.
func (c *CollectSink) Append(frames []*img.Image) error {
	if c.closed {
		return fmt.Errorf("stream: append to closed sink")
	}
	c.Frames = append(c.Frames, frames...)
	return nil
}

// Close implements Sink.
func (c *CollectSink) Close() error {
	c.closed = true
	return nil
}
