// Package stream is the bounded-memory streaming substrate of the VERRO
// pipeline: a frame Source that yields consecutive bounded windows, a Stage
// interface for operators that consume those windows while carrying state
// across them, and a Sink for windowed output. The driver (Run) threads the
// windows through the stages in order, re-presenting overlap frames to
// temporally-dependent stages and flushing every stage at end-of-stream.
//
// The contract that makes streaming safe to adopt is bit-identity: a stage
// fed the clip in windows of any size must produce exactly the state it
// would have produced from the whole clip at once. Stages achieve that by
// doing only per-frame work (histograms, detection), by carrying explicit
// sequential state (the tracker's Kalman filters), or by retaining a bounded
// sample of frames (the strided background median). The equivalence suite
// at the repository root (stream_equiv_test.go) holds the whole pipeline to
// this contract, and the memory-ceiling test proves peak live heap is
// O(window), not O(clip).
//
// The package deliberately depends only on internal/img: video containers
// (internal/vid) implement Source/Sink for .vvf files, and pipeline drivers
// (internal/core, the verro root package) assemble stages.
package stream

import (
	"errors"
	"fmt"
	"io"

	"verro/internal/img"
)

// Meta describes the frame sequence a Source yields, mirroring the .vvf
// header: geometry, timing, the camera model, and the total frame count.
// Frames must be known up front — the VVF container stores it in the
// header, and the sanitizer's privacy accounting needs the full presence-
// vector length before the first window is processed.
type Meta struct {
	Name   string
	W, H   int
	FPS    float64
	Moving bool
	Frames int
}

// Window is one bounded run of consecutive frames handed to a Stage.
type Window struct {
	// Start is the absolute clip index of Frames[0].
	Start int
	// Frames holds the window's frames; at most budget+overlap of them.
	Frames []*img.Image
	// Fresh is the index in Frames of the first frame this stage has not
	// seen before: Frames[:Fresh] are overlap frames re-presented for
	// temporal context, Frames[Fresh:] are new. Fresh is 0 for stages with
	// no overlap and at the head of the stream.
	Fresh int
	// Last marks the final window of the stream.
	Last bool
}

// FreshStart returns the absolute clip index of the first new frame.
func (w Window) FreshStart() int { return w.Start + w.Fresh }

// FreshFrames returns only the not-yet-seen frames of the window.
func (w Window) FreshFrames() []*img.Image { return w.Frames[w.Fresh:] }

// Source yields a frame sequence in consecutive bounded runs. Sources are
// rewindable so multi-pass pipelines (background model, then detection)
// can re-read the clip without ever holding it in memory.
type Source interface {
	// Meta describes the sequence. It is valid before the first Next call.
	Meta() Meta
	// Next returns the next run of at most budget frames (budget <= 0
	// means "all remaining") and the absolute index of the first one.
	// It returns io.EOF when the sequence is exhausted.
	Next(budget int) (frames []*img.Image, start int, err error)
	// Reset rewinds the source to frame 0 for another pass.
	Reset() error
	// Close releases underlying resources. Close is idempotent.
	Close() error
}

// Sink consumes the output frame sequence window by window.
type Sink interface {
	// Append accepts the next consecutive run of output frames.
	Append(frames []*img.Image) error
	// Close finalizes the output. No Append may follow.
	Close() error
}

// Stage is one streaming operator: it consumes the clip's windows in order
// and carries whatever state it needs across them.
type Stage interface {
	// Name identifies the stage in errors and progress reports.
	Name() string
	// Overlap is how many already-processed trailing frames the stage
	// needs re-presented at the head of each subsequent window (temporal
	// context, e.g. frame-to-frame pan estimation). The driver satisfies
	// any overlap not exceeding the window budget of the previous windows.
	Overlap() int
	// Process consumes one window. Frames[:Fresh] are repeats.
	Process(w Window) error
	// Flush finalizes the stage after the last window (also called for an
	// empty stream, with no Process calls before it).
	Flush() error
}

// ErrNoStages is returned by Run when no stage is supplied.
var ErrNoStages = errors.New("stream: no stages")

// Run drives src through the stages in window order: each window of at most
// budget frames is handed to every stage (with that stage's overlap frames
// prepended), and every stage is flushed after the last window. budget <= 0
// processes the whole clip as a single window — the degenerate streaming
// run the batch path corresponds to. onWindow, when non-nil, is called
// before the stages process each raw window; the function it returns (which
// may be nil) runs after they are done — the hook the pipeline drivers use
// to open and close a per-window observability span.
func Run(src Source, budget int, onWindow func(Window) func(), stages ...Stage) error {
	if len(stages) == 0 {
		return ErrNoStages
	}
	maxOverlap := 0
	for _, s := range stages {
		if o := s.Overlap(); o > maxOverlap {
			maxOverlap = o
		}
	}

	// tail holds the last maxOverlap frames already processed.
	var tail []*img.Image
	total := src.Meta().Frames

	for {
		frames, start, err := src.Next(budget)
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("stream: source: %w", err)
		}
		if len(frames) == 0 {
			return fmt.Errorf("stream: source returned an empty window at frame %d", start)
		}
		last := start+len(frames) >= total
		raw := Window{Start: start, Frames: frames, Last: last}
		var after func()
		if onWindow != nil {
			after = onWindow(raw)
		}
		for _, s := range stages {
			w := raw
			if o := s.Overlap(); o > 0 && len(tail) > 0 {
				if o > len(tail) {
					o = len(tail)
				}
				joined := make([]*img.Image, 0, o+len(frames))
				joined = append(joined, tail[len(tail)-o:]...)
				joined = append(joined, frames...)
				w = Window{Start: start - o, Frames: joined, Fresh: o, Last: last}
			}
			if err := s.Process(w); err != nil {
				return fmt.Errorf("stream: stage %s: %w", s.Name(), err)
			}
		}
		if after != nil {
			after()
		}
		if maxOverlap > 0 {
			tail = appendTail(tail, frames, maxOverlap)
		}
	}
	for _, s := range stages {
		if err := s.Flush(); err != nil {
			return fmt.Errorf("stream: stage %s flush: %w", s.Name(), err)
		}
	}
	return nil
}

// appendTail keeps the trailing keep frames of the sequence seen so far.
func appendTail(tail, frames []*img.Image, keep int) []*img.Image {
	if len(frames) >= keep {
		out := make([]*img.Image, keep)
		copy(out, frames[len(frames)-keep:])
		return out
	}
	joined := make([]*img.Image, 0, len(tail)+len(frames))
	joined = append(joined, tail...)
	joined = append(joined, frames...)
	if len(joined) > keep {
		joined = joined[len(joined)-keep:]
	}
	return joined
}
