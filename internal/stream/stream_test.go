package stream

import (
	"errors"
	"fmt"
	"testing"

	"verro/internal/img"
)

// mkFrames builds n tiny frames whose first pixel byte encodes their index,
// so a test stage can verify exactly which frames it was shown.
func mkFrames(n int) []*img.Image {
	out := make([]*img.Image, n)
	for i := range out {
		f := img.New(2, 2)
		f.Pix[0] = uint8(i)
		out[i] = f
	}
	return out
}

func testSource(n int) *SliceSource {
	return NewSliceSource(Meta{Name: "t", W: 2, H: 2, FPS: 1}, mkFrames(n))
}

// recorder captures every window a stage is shown.
type recorder struct {
	name    string
	overlap int
	windows []Window
	flushed bool
	procErr error
}

func (r *recorder) Name() string { return r.name }
func (r *recorder) Overlap() int { return r.overlap }
func (r *recorder) Process(w Window) error {
	// Deep-copy the frame list; the driver may reuse nothing, but the test
	// should not depend on that.
	cp := w
	cp.Frames = append([]*img.Image(nil), w.Frames...)
	r.windows = append(r.windows, cp)
	return r.procErr
}
func (r *recorder) Flush() error {
	r.flushed = true
	return nil
}

// frameIndex recovers the clip index a mkFrames frame encodes.
func frameIndex(f *img.Image) int { return int(f.Pix[0]) }

// checkWindows verifies a recorder saw the whole clip exactly once through
// its fresh frames, with correct Start/Fresh/Last bookkeeping and at most
// overlap repeated frames per window.
func checkWindows(t *testing.T, r *recorder, clip, budget int) {
	t.Helper()
	next := 0
	for wi, w := range r.windows {
		if w.Start+w.Fresh != next {
			t.Fatalf("window %d: fresh frames start at %d, want %d", wi, w.Start+w.Fresh, next)
		}
		if w.Fresh > r.overlap {
			t.Fatalf("window %d: %d overlap frames exceed declared overlap %d", wi, w.Fresh, r.overlap)
		}
		if fresh := len(w.Frames) - w.Fresh; budget > 0 && fresh > budget {
			t.Fatalf("window %d: %d fresh frames exceed budget %d", wi, fresh, budget)
		}
		for i, f := range w.Frames {
			if got, want := frameIndex(f), w.Start+i; got != want {
				t.Fatalf("window %d: frame %d holds clip frame %d, want %d", wi, i, got, want)
			}
		}
		next = w.Start + len(w.Frames)
		if w.Last != (next >= clip) {
			t.Fatalf("window %d: Last=%v at frame %d of %d", wi, w.Last, next, clip)
		}
	}
	if next != clip {
		t.Fatalf("stages saw %d frames, want %d", next, clip)
	}
	if !r.flushed {
		t.Fatal("stage never flushed")
	}
}

func TestRunPartitionsClip(t *testing.T) {
	for _, tc := range []struct{ clip, budget, overlap int }{
		{10, 3, 0},  // final partial window
		{10, 5, 0},  // exact division
		{10, 1, 0},  // window == 1
		{10, 64, 0}, // window > clip
		{10, 0, 0},  // whole-clip window
		{10, 3, 2},  // overlap smaller than budget
		{10, 2, 5},  // overlap larger than budget: tail spans windows
		{1, 4, 2},   // single-frame clip
	} {
		name := fmt.Sprintf("clip=%d,budget=%d,overlap=%d", tc.clip, tc.budget, tc.overlap)
		t.Run(name, func(t *testing.T) {
			r := &recorder{name: "rec", overlap: tc.overlap}
			if err := Run(testSource(tc.clip), tc.budget, nil, r); err != nil {
				t.Fatal(err)
			}
			checkWindows(t, r, tc.clip, tc.budget)
		})
	}
}

func TestRunOverlapRepresentsTail(t *testing.T) {
	// With budget 3 and overlap 2, every window after the first must start
	// with exactly the 2 frames preceding its fresh range.
	r := &recorder{name: "rec", overlap: 2}
	if err := Run(testSource(11), 3, nil, r); err != nil {
		t.Fatal(err)
	}
	if len(r.windows) != 4 {
		t.Fatalf("got %d windows, want 4", len(r.windows))
	}
	for wi, w := range r.windows[1:] {
		if w.Fresh != 2 {
			t.Fatalf("window %d: Fresh=%d, want 2", wi+1, w.Fresh)
		}
	}
	if r.windows[0].Fresh != 0 {
		t.Fatalf("first window has Fresh=%d, want 0", r.windows[0].Fresh)
	}
}

func TestRunMixedOverlaps(t *testing.T) {
	// Stages with different overlaps share one pass but each sees its own
	// prefix; the no-overlap stage must never see a repeat.
	a := &recorder{name: "a", overlap: 0}
	b := &recorder{name: "b", overlap: 3}
	if err := Run(testSource(9), 4, nil, a, b); err != nil {
		t.Fatal(err)
	}
	checkWindows(t, a, 9, 4)
	checkWindows(t, b, 9, 4)
	for wi, w := range a.windows {
		if w.Fresh != 0 {
			t.Fatalf("no-overlap stage saw repeats in window %d", wi)
		}
	}
}

func TestRunEmptyStreamFlushes(t *testing.T) {
	r := &recorder{name: "rec"}
	if err := Run(testSource(0), 4, nil, r); err != nil {
		t.Fatal(err)
	}
	if len(r.windows) != 0 {
		t.Fatalf("empty stream produced %d windows", len(r.windows))
	}
	if !r.flushed {
		t.Fatal("empty stream did not flush stages")
	}
}

func TestRunNoStages(t *testing.T) {
	if err := Run(testSource(4), 2, nil); !errors.Is(err, ErrNoStages) {
		t.Fatalf("got %v, want ErrNoStages", err)
	}
}

func TestRunStageErrorNamed(t *testing.T) {
	boom := errors.New("boom")
	r := &recorder{name: "exploder", procErr: boom}
	err := Run(testSource(4), 2, nil, r)
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want wrapped boom", err)
	}
	if want := "stream: stage exploder:"; err == nil || len(err.Error()) < len(want) || err.Error()[:len(want)] != want {
		t.Fatalf("error %q does not name the failing stage", err)
	}
}

func TestRunOnWindowHook(t *testing.T) {
	var order []string
	hooked := &recorder{name: "rec"}
	hook := func(w Window) func() {
		order = append(order, fmt.Sprintf("pre%d", w.Start))
		return func() { order = append(order, fmt.Sprintf("post%d", w.Start)) }
	}
	if err := Run(testSource(4), 2, hook, hooked); err != nil {
		t.Fatal(err)
	}
	want := []string{"pre0", "post0", "pre2", "post2"}
	if len(order) != len(want) {
		t.Fatalf("hook calls %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("hook calls %v, want %v", order, want)
		}
	}
}

func TestSliceSourceReset(t *testing.T) {
	src := testSource(5)
	read := func() int {
		n := 0
		for {
			fs, _, err := src.Next(2)
			if err != nil {
				break
			}
			n += len(fs)
		}
		return n
	}
	if n := read(); n != 5 {
		t.Fatalf("first pass read %d frames, want 5", n)
	}
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	if n := read(); n != 5 {
		t.Fatalf("second pass read %d frames, want 5", n)
	}
}

func TestCollectSink(t *testing.T) {
	var sink CollectSink
	if err := sink.Append(mkFrames(3)); err != nil {
		t.Fatal(err)
	}
	if err := sink.Append(mkFrames(2)); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if len(sink.Frames) != 5 {
		t.Fatalf("collected %d frames, want 5", len(sink.Frames))
	}
	if err := sink.Append(mkFrames(1)); err == nil {
		t.Fatal("append after close did not fail")
	}
}
