// Package svm implements a linear support-vector machine trained with the
// Pegasos stochastic sub-gradient algorithm. Together with the HOG features
// of package hog it forms the paper's HOG+SVM pedestrian/vehicle detector
// ([51], [22]).
package svm

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
)

// Model is a trained linear classifier: Score(x) = w·x + b.
type Model struct {
	W    []float64
	Bias float64
}

// Score returns the signed decision value for feature vector x; positive
// means the positive class. Vectors shorter than W score only their prefix.
func (m *Model) Score(x []float64) float64 {
	n := len(m.W)
	if len(x) < n {
		n = len(x)
	}
	s := m.Bias
	for i := 0; i < n; i++ {
		s += m.W[i] * x[i]
	}
	return s
}

// Predict returns +1 or -1.
func (m *Model) Predict(x []float64) int {
	if m.Score(x) >= 0 {
		return 1
	}
	return -1
}

// TrainConfig holds Pegasos hyper-parameters.
type TrainConfig struct {
	Lambda float64 // regularization strength
	Epochs int     // passes over the data
	Seed   int64   // RNG seed for sample order
}

// DefaultTrainConfig works well for the few-hundred-sample HOG problems in
// this repository.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Lambda: 1e-4, Epochs: 60, Seed: 1}
}

// Errors returned by Train.
var (
	ErrNoData    = errors.New("svm: no training data")
	ErrBadLabels = errors.New("svm: labels must be ±1 and both classes present")
)

// Train fits a linear SVM on the given samples with labels in {-1, +1}.
func Train(samples [][]float64, labels []int, cfg TrainConfig) (*Model, error) {
	if len(samples) == 0 || len(samples) != len(labels) {
		return nil, fmt.Errorf("%w: %d samples, %d labels", ErrNoData, len(samples), len(labels))
	}
	dim := len(samples[0])
	pos, neg := 0, 0
	for i, y := range labels {
		if y != 1 && y != -1 {
			return nil, fmt.Errorf("%w: label %d at %d", ErrBadLabels, y, i)
		}
		if len(samples[i]) != dim {
			return nil, fmt.Errorf("svm: sample %d has dim %d, want %d", i, len(samples[i]), dim)
		}
		if y == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil, fmt.Errorf("%w: %d positive, %d negative", ErrBadLabels, pos, neg)
	}
	if cfg.Lambda <= 0 {
		cfg.Lambda = 1e-3
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 30
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	w := make([]float64, dim)
	var bias float64
	t := 0
	order := rng.Perm(len(samples))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			t++
			// Warm-started Pegasos step size: behaves like 1/(λt)
			// asymptotically but avoids the enormous first steps that
			// destabilize the (unregularized) bias term.
			eta := 1 / (cfg.Lambda*float64(t) + 1)
			x := samples[idx]
			y := float64(labels[idx])
			score := bias
			for i, xi := range x {
				score += w[i] * xi
			}
			// Regularization shrink.
			shrink := 1 - eta*cfg.Lambda
			if shrink < 0 {
				shrink = 0
			}
			for i := range w {
				w[i] *= shrink
			}
			// Hinge sub-gradient step on margin violations.
			if y*score < 1 {
				for i, xi := range x {
					w[i] += eta * y * xi
				}
				bias += eta * y
			}
		}
	}
	return &Model{W: w, Bias: bias}, nil
}

// Accuracy returns the fraction of samples the model labels correctly.
func (m *Model) Accuracy(samples [][]float64, labels []int) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for i, x := range samples {
		if m.Predict(x) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

const modelMagic = "SVM1"

// Encode serializes the model.
func (m *Model) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(modelMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(m.W))); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(m.Bias)); err != nil {
		return err
	}
	for _, v := range m.W {
		if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(v)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode parses a model written by Encode.
func Decode(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(modelMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("svm: decode: %w", err)
	}
	if string(magic) != modelMagic {
		return nil, fmt.Errorf("svm: bad magic %q", magic)
	}
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<24 {
		return nil, fmt.Errorf("svm: implausible weight count %d", n)
	}
	var bits uint64
	if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
		return nil, err
	}
	m := &Model{W: make([]float64, n), Bias: math.Float64frombits(bits)}
	for i := range m.W {
		if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
			return nil, err
		}
		m.W[i] = math.Float64frombits(bits)
	}
	return m, nil
}
