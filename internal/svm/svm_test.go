package svm

import (
	"bytes"
	"math/rand"
	"testing"
)

// gaussianBlobs makes a linearly separable 2-class dataset.
func gaussianBlobs(rng *rand.Rand, n int, sep float64) (samples [][]float64, labels []int) {
	for i := 0; i < n; i++ {
		y := 1
		cx, cy := sep, sep
		if i%2 == 0 {
			y = -1
			cx, cy = -sep, -sep
		}
		samples = append(samples, []float64{cx + rng.NormFloat64(), cy + rng.NormFloat64()})
		labels = append(labels, y)
	}
	return samples, labels
}

func TestTrainSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	samples, labels := gaussianBlobs(rng, 200, 4)
	m, err := Train(samples, labels, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(samples, labels); acc < 0.97 {
		t.Fatalf("training accuracy = %v, want >= 0.97", acc)
	}
	// Held-out data.
	test, testLabels := gaussianBlobs(rng, 200, 4)
	if acc := m.Accuracy(test, testLabels); acc < 0.95 {
		t.Fatalf("test accuracy = %v, want >= 0.95", acc)
	}
}

func TestTrainOverlappingDataStillLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	samples, labels := gaussianBlobs(rng, 400, 1.2)
	m, err := Train(samples, labels, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(samples, labels); acc < 0.75 {
		t.Fatalf("accuracy = %v on overlapping blobs, want >= 0.75", acc)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil, DefaultTrainConfig()); err == nil {
		t.Fatal("empty data should fail")
	}
	if _, err := Train([][]float64{{1}}, []int{2}, DefaultTrainConfig()); err == nil {
		t.Fatal("bad label should fail")
	}
	if _, err := Train([][]float64{{1}, {2}}, []int{1, 1}, DefaultTrainConfig()); err == nil {
		t.Fatal("single-class data should fail")
	}
	if _, err := Train([][]float64{{1}, {2, 3}}, []int{1, -1}, DefaultTrainConfig()); err == nil {
		t.Fatal("ragged samples should fail")
	}
	if _, err := Train([][]float64{{1}}, []int{1, -1}, DefaultTrainConfig()); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestTrainDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples, labels := gaussianBlobs(rng, 100, 3)
	cfg := DefaultTrainConfig()
	m1, err := Train(samples, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(samples, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.W {
		if m1.W[i] != m2.W[i] {
			t.Fatal("same seed should give identical models")
		}
	}
}

func TestScoreShortVector(t *testing.T) {
	m := &Model{W: []float64{1, 2, 3}, Bias: 0.5}
	// Only the prefix is scored.
	if got := m.Score([]float64{1}); got != 1.5 {
		t.Fatalf("Score = %v, want 1.5", got)
	}
	if got := m.Predict([]float64{-10, 0, 0}); got != -1 {
		t.Fatalf("Predict = %d", got)
	}
}

func TestDefaultsAppliedForZeroConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	samples, labels := gaussianBlobs(rng, 100, 4)
	m, err := Train(samples, labels, TrainConfig{}) // zero-value config
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(samples, labels); acc < 0.9 {
		t.Fatalf("accuracy with defaulted config = %v", acc)
	}
}

func TestModelEncodeDecode(t *testing.T) {
	m := &Model{W: []float64{0.25, -1.5, 3.75}, Bias: -0.125}
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Bias != m.Bias || len(back.W) != len(m.W) {
		t.Fatalf("decoded %+v", back)
	}
	for i := range m.W {
		if back.W[i] != m.W[i] {
			t.Fatalf("weight %d = %v, want %v", i, back.W[i], m.W[i])
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream should fail")
	}
	if _, err := Decode(bytes.NewReader([]byte("NOPE1234"))); err == nil {
		t.Fatal("bad magic should fail")
	}
	// Truncated after magic.
	if _, err := Decode(bytes.NewReader([]byte("SVM1"))); err == nil {
		t.Fatal("truncated stream should fail")
	}
}

func TestAccuracyEmpty(t *testing.T) {
	m := &Model{W: []float64{1}}
	if m.Accuracy(nil, nil) != 0 {
		t.Fatal("accuracy on empty set should be 0")
	}
}
