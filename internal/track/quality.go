package track

import (
	"fmt"

	"verro/internal/assign"
	"verro/internal/geom"
	"verro/internal/motio"
)

// Quality holds CLEAR-MOT-style tracking metrics computed against ground
// truth: per-frame matches (at an IoU threshold) via min-cost assignment,
// with identity-switch accounting.
type Quality struct {
	Frames         int
	TruePositives  int
	FalsePositives int
	Misses         int
	IDSwitches     int
	// IoUSum accumulates the IoU of matched pairs (for MOTP).
	IoUSum float64
}

// MOTA returns the multiple-object-tracking accuracy:
// 1 − (misses + false positives + ID switches) / ground-truth detections.
func (q Quality) MOTA() float64 {
	gt := q.TruePositives + q.Misses
	if gt == 0 {
		return 0
	}
	return 1 - float64(q.Misses+q.FalsePositives+q.IDSwitches)/float64(gt)
}

// MOTP returns the mean IoU of matched pairs (higher is better; the CLEAR
// definition uses distance, the IoU variant is standard for boxes).
func (q Quality) MOTP() float64 {
	if q.TruePositives == 0 {
		return 0
	}
	return q.IoUSum / float64(q.TruePositives)
}

func (q Quality) String() string {
	return fmt.Sprintf("MOTA=%.3f MOTP=%.3f (tp=%d fp=%d miss=%d idsw=%d)",
		q.MOTA(), q.MOTP(), q.TruePositives, q.FalsePositives, q.Misses, q.IDSwitches)
}

// EvaluateTracks scores hypothesis tracks against ground truth over frames
// [0, numFrames) at the given IoU threshold.
func EvaluateTracks(truth, hypo *motio.TrackSet, numFrames int, iouThreshold float64) Quality {
	q := Quality{Frames: numFrames}
	// lastMatch remembers which hypothesis ID each ground-truth ID was
	// last matched to, for ID-switch counting.
	lastMatch := map[int]int{}

	for k := 0; k < numFrames; k++ {
		var gtIDs []int
		var gtBoxes []geom.Rect
		for _, t := range truth.Tracks {
			if b, ok := t.Box(k); ok {
				gtIDs = append(gtIDs, t.ID)
				gtBoxes = append(gtBoxes, b)
			}
		}
		var hIDs []int
		var hBoxes []geom.Rect
		for _, t := range hypo.Tracks {
			if b, ok := t.Box(k); ok {
				hIDs = append(hIDs, t.ID)
				hBoxes = append(hBoxes, b)
			}
		}
		if len(gtBoxes) == 0 {
			q.FalsePositives += len(hBoxes)
			continue
		}
		if len(hBoxes) == 0 {
			q.Misses += len(gtBoxes)
			continue
		}
		cost := make([][]float64, len(gtBoxes))
		for i := range gtBoxes {
			cost[i] = make([]float64, len(hBoxes))
			for j := range hBoxes {
				cost[i][j] = 1 - geom.IoU(gtBoxes[i], hBoxes[j])
			}
		}
		rowToCol, _, err := assign.Solve(cost)
		if err != nil {
			// Finite costs: cannot happen; treat everything as missed.
			q.Misses += len(gtBoxes)
			q.FalsePositives += len(hBoxes)
			continue
		}
		usedHypo := make([]bool, len(hBoxes))
		for i, j := range rowToCol {
			iou := 0.0
			if j >= 0 {
				iou = geom.IoU(gtBoxes[i], hBoxes[j])
			}
			if j < 0 || iou < iouThreshold {
				q.Misses++
				continue
			}
			usedHypo[j] = true
			q.TruePositives++
			q.IoUSum += iou
			if prev, ok := lastMatch[gtIDs[i]]; ok && prev != hIDs[j] {
				q.IDSwitches++
			}
			lastMatch[gtIDs[i]] = hIDs[j]
		}
		for _, used := range usedHypo {
			if !used {
				q.FalsePositives++
			}
		}
	}
	return q
}
