package track

import (
	"math"
	"testing"

	"verro/internal/detect"
	"verro/internal/geom"
	"verro/internal/motio"
	"verro/internal/scene"
)

func lineTrack(id, start, n, x0, step int) *motio.Track {
	t := motio.NewTrack(id, "pedestrian")
	for k := 0; k < n; k++ {
		t.Set(start+k, geom.RectAt(x0+step*k, 20, 8, 16))
	}
	return t
}

func TestEvaluateTracksPerfect(t *testing.T) {
	truth := motio.NewTrackSet()
	truth.Add(lineTrack(1, 0, 10, 5, 3))
	hypo := motio.NewTrackSet()
	hypo.Add(lineTrack(7, 0, 10, 5, 3)) // same boxes, different ID
	q := EvaluateTracks(truth, hypo, 10, 0.5)
	if q.MOTA() != 1 {
		t.Fatalf("perfect tracking MOTA = %v (%v)", q.MOTA(), q)
	}
	if math.Abs(q.MOTP()-1) > 1e-9 {
		t.Fatalf("perfect tracking MOTP = %v", q.MOTP())
	}
	if q.IDSwitches != 0 {
		t.Fatalf("no switches expected: %v", q)
	}
}

func TestEvaluateTracksMissesAndFalsePositives(t *testing.T) {
	truth := motio.NewTrackSet()
	truth.Add(lineTrack(1, 0, 10, 5, 3))
	// Hypothesis covers only the first 5 frames, plus a spurious track.
	hypo := motio.NewTrackSet()
	hypo.Add(lineTrack(2, 0, 5, 5, 3))
	hypo.Add(lineTrack(3, 0, 10, 200, 0)) // far away: all false positives
	q := EvaluateTracks(truth, hypo, 10, 0.5)
	if q.Misses != 5 {
		t.Fatalf("misses = %d, want 5", q.Misses)
	}
	if q.FalsePositives != 10 {
		t.Fatalf("false positives = %d, want 10", q.FalsePositives)
	}
	if q.MOTA() >= 1 {
		t.Fatalf("MOTA should be penalized: %v", q)
	}
	_ = q.String()
}

func TestEvaluateTracksIDSwitch(t *testing.T) {
	truth := motio.NewTrackSet()
	truth.Add(lineTrack(1, 0, 10, 5, 3))
	// The hypothesis changes identity halfway.
	hypo := motio.NewTrackSet()
	hypo.Add(lineTrack(10, 0, 5, 5, 3))
	second := lineTrack(11, 5, 5, 5+5*3, 3)
	hypo.Add(second)
	q := EvaluateTracks(truth, hypo, 10, 0.5)
	if q.IDSwitches != 1 {
		t.Fatalf("ID switches = %d, want 1 (%v)", q.IDSwitches, q)
	}
	if q.TruePositives != 10 {
		t.Fatalf("tp = %d", q.TruePositives)
	}
}

func TestEvaluateTracksEmptyCases(t *testing.T) {
	empty := motio.NewTrackSet()
	q := EvaluateTracks(empty, empty, 10, 0.5)
	if q.MOTA() != 0 || q.MOTP() != 0 {
		t.Fatalf("empty evaluation: %v", q)
	}
	truth := motio.NewTrackSet()
	truth.Add(lineTrack(1, 0, 5, 5, 3))
	q2 := EvaluateTracks(truth, empty, 5, 0.5)
	if q2.Misses != 5 || q2.MOTA() != 0 {
		t.Fatalf("all-missed: %v", q2)
	}
}

func TestTrackerQualityOnGeneratedScene(t *testing.T) {
	p := scene.Preset{
		Name: "mota-test", W: 128, H: 96, Frames: 50, Objects: 4,
		FPS: 30, Style: scene.StyleSquare, Class: scene.Pedestrian, Seed: 151,
	}
	g, err := scene.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := detect.MedianBackground(g.Video.Frames, 2)
	if err != nil {
		t.Fatal(err)
	}
	hypo, err := Run(g.Video.Frames, detect.NewBGSubtractor(bg), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := EvaluateTracks(g.Truth, hypo, g.Video.Len(), 0.3)
	if q.MOTA() < 0.3 {
		t.Fatalf("tracker MOTA too low on a clean synthetic scene: %v", q)
	}
	if q.MOTP() < 0.4 {
		t.Fatalf("tracker MOTP too low: %v", q)
	}
}
