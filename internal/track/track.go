// Package track implements a SORT-style multi-object tracker: each track is
// a constant-velocity Kalman filter; detections are associated to tracks by
// minimum-cost assignment over an IoU + appearance (HSV histogram) cost; the
// track lifecycle (tentative → confirmed → dead) mirrors the trackers the
// paper uses [48, 49] with the deep appearance embedding replaced by a
// colour histogram.
package track

import (
	"fmt"
	"math"

	"verro/internal/assign"
	"verro/internal/detect"
	"verro/internal/geom"
	"verro/internal/img"
	"verro/internal/kalman"
	"verro/internal/motio"
	"verro/internal/obs"
	"verro/internal/par"
)

// Config tunes the tracker.
type Config struct {
	// IoUWeight and AppearanceWeight blend the two association costs.
	IoUWeight        float64
	AppearanceWeight float64
	// MaxCost is the association gate: pairs costing more are forbidden.
	MaxCost float64
	// MaxMisses is how many consecutive frames a confirmed track survives
	// without a matched detection.
	MaxMisses int
	// MinHits is how many matches a tentative track needs to be confirmed.
	MinHits int
}

// DefaultConfig returns tracker settings tuned for the synthetic benchmark.
func DefaultConfig() Config {
	return Config{
		IoUWeight:        0.7,
		AppearanceWeight: 0.3,
		MaxCost:          0.85,
		MaxMisses:        5,
		MinHits:          2,
	}
}

// state is a live track's bookkeeping.
type state struct {
	id        int
	filter    *kalman.Filter
	hist      *img.HSVHist
	hits      int
	misses    int
	confirmed bool
	lastBox   geom.Rect
}

// Tracker consumes per-frame detections and emits identity-stable tracks.
type Tracker struct {
	cfg    Config
	nextID int
	live   []*state
	out    map[int]*motio.Track
	frame  int
}

// New returns an empty tracker.
func New(cfg Config) *Tracker {
	if cfg.IoUWeight == 0 && cfg.AppearanceWeight == 0 {
		cfg = DefaultConfig()
	}
	if cfg.MaxMisses <= 0 {
		cfg.MaxMisses = 5
	}
	if cfg.MinHits <= 0 {
		cfg.MinHits = 2
	}
	if cfg.MaxCost <= 0 {
		cfg.MaxCost = 0.85
	}
	return &Tracker{cfg: cfg, nextID: 1, out: map[int]*motio.Track{}}
}

// Step advances the tracker by one frame. frame supplies pixel data for the
// appearance term; detections are the frame's detector output.
func (t *Tracker) Step(frame *img.Image, detections []detect.Detection) error {
	if frame == nil {
		return fmt.Errorf("track: nil frame")
	}
	// Predict all live tracks forward.
	predicted := make([]geom.Rect, len(t.live))
	for i, s := range t.live {
		predicted[i] = s.filter.Predict()
	}

	// Appearance of each detection.
	detHists := make([]*img.HSVHist, len(detections))
	for i, d := range detections {
		detHists[i] = img.NewHSVHistRegion(frame, d.Box, 8, 4, 4)
	}

	matchedTracks := make([]bool, len(t.live))
	matchedDets := make([]bool, len(detections))

	if len(t.live) > 0 && len(detections) > 0 {
		cost := make([][]float64, len(t.live))
		for i, s := range t.live {
			cost[i] = make([]float64, len(detections))
			for j, d := range detections {
				c := t.pairCost(predicted[i], s.hist, d.Box, detHists[j])
				if c > t.cfg.MaxCost {
					c = math.Inf(1)
				}
				cost[i][j] = c
			}
		}
		rowToCol, _, err := assign.Solve(padForbidden(cost))
		if err != nil {
			return fmt.Errorf("track: association: %w", err)
		}
		for i := range t.live {
			j := rowToCol[i]
			if j < 0 || j >= len(detections) {
				continue // matched to a padding column = unmatched
			}
			if math.IsInf(cost[i][j], 1) {
				continue
			}
			t.matchTrack(i, detections[j], detHists[j])
			matchedTracks[i] = true
			matchedDets[j] = true
		}
	}

	// Unmatched tracks age.
	var survivors []*state
	for i, s := range t.live {
		if !matchedTracks[i] {
			s.misses++
		}
		if s.misses <= t.cfg.MaxMisses {
			survivors = append(survivors, s)
		}
	}
	t.live = survivors

	// Unmatched detections spawn tentative tracks.
	for j, d := range detections {
		if matchedDets[j] {
			continue
		}
		s := &state{
			id:      t.nextID,
			filter:  kalman.New(d.Box),
			hist:    detHists[j],
			hits:    1,
			lastBox: d.Box,
		}
		t.nextID++
		t.live = append(t.live, s)
	}

	// Record confirmed tracks.
	for _, s := range t.live {
		if s.confirmed && s.misses == 0 {
			tr, ok := t.out[s.id]
			if !ok {
				tr = motio.NewTrack(s.id, "pedestrian")
				t.out[s.id] = tr
			}
			tr.Set(t.frame, s.lastBox)
		}
	}
	t.frame++
	return nil
}

// matchTrack updates track i with detection d.
func (t *Tracker) matchTrack(i int, d detect.Detection, h *img.HSVHist) {
	s := t.live[i]
	s.filter.Update(d.Box)
	s.lastBox = d.Box
	s.hits++
	s.misses = 0
	// Exponential appearance update.
	s.hist.Mix(h, 0.25)
	if !s.confirmed && s.hits >= t.cfg.MinHits {
		s.confirmed = true
	}
}

// pairCost blends (1−IoU) and (1−appearance cosine).
func (t *Tracker) pairCost(trackBox geom.Rect, trackHist *img.HSVHist, detBox geom.Rect, detHist *img.HSVHist) float64 {
	iou := geom.IoU(trackBox, detBox)
	app := img.CosineSim(trackHist.Concat(), detHist.Concat())
	wSum := t.cfg.IoUWeight + t.cfg.AppearanceWeight
	return (t.cfg.IoUWeight*(1-iou) + t.cfg.AppearanceWeight*(1-app)) / wSum
}

// padForbidden appends, for every row, a dedicated high-cost dummy column so
// the assignment always has a feasible solution even when all real pairs
// are forbidden (+Inf).
func padForbidden(cost [][]float64) [][]float64 {
	n := len(cost)
	if n == 0 {
		return cost
	}
	m := len(cost[0])
	out := make([][]float64, n)
	for i := range cost {
		row := make([]float64, m+n)
		copy(row, cost[i])
		for j := m; j < m+n; j++ {
			row[j] = 1e6 // lose to any finite real pairing
		}
		out[i] = row
	}
	return out
}

// Tracks returns the confirmed tracks accumulated so far, sorted by ID.
func (t *Tracker) Tracks() *motio.TrackSet {
	set := motio.NewTrackSet()
	for _, tr := range t.out {
		set.Add(tr.Clone())
	}
	set.Sort()
	return set
}

// Run drives a detector over a whole frame sequence and returns the tracks.
// Detection is stateless per frame, so all frames are detected on the worker
// pool first; the stateful tracker then consumes the gathered results in
// frame order, making the tracks bit-identical to a serial run. Detector
// implementations must tolerate concurrent Detect calls (both built-in
// detectors are pure readers of their model state).
func Run(frames []*img.Image, det detect.Detector, cfg Config) (*motio.TrackSet, error) {
	return RunRT(frames, det, cfg, obs.Runtime{})
}

// RunRT is Run on an explicit runtime: detection shards over rt.Pool under a
// "detect" child span and the serial association pass runs under a "track"
// child span. Detectors that implement obs.SpanSetter (the HOG+SVM detector
// does) are rebound to the detect span so their internal counters nest there.
func RunRT(frames []*img.Image, det detect.Detector, cfg Config, rt obs.Runtime) (*motio.TrackSet, error) {
	type detResult struct {
		dets []detect.Detection
		err  error
	}
	dspan := rt.Span.Child("detect")
	if s, ok := det.(obs.SpanSetter); ok {
		s.SetSpan(dspan)
	}
	results := par.MapPool(rt.Pool, len(frames), 1, func(i int) detResult {
		ds, err := det.Detect(frames[i])
		return detResult{dets: ds, err: err}
	})
	dspan.Add(obs.CFramesDetected, int64(len(frames)))
	var nDets int64
	for _, r := range results {
		nDets += int64(len(r.dets))
	}
	dspan.Add(obs.CDetections, nDets)
	dspan.End()

	tspan := rt.Span.Child("track")
	defer tspan.End()
	tr := New(cfg)
	for i, f := range frames {
		if results[i].err != nil {
			return nil, results[i].err
		}
		if err := tr.Step(f, results[i].dets); err != nil {
			return nil, err
		}
	}
	set := tr.Tracks()
	tspan.Add(obs.CFramesTracked, int64(len(frames)))
	tspan.Add(obs.CTracksConfirmed, int64(len(set.Tracks)))
	return set, nil
}

// Runner is the windowed form of Run for the streaming pipeline: the caller
// feeds consecutive frame windows to Window and collects the tracks with
// Finish. Within a window detection shards over the pool exactly as RunRT
// does; the stateful tracker consumes frames strictly in clip order across
// windows. Detection is pure per frame and Step order is identical, so the
// final track set is bit-identical to RunRT over the concatenated frames —
// while only one window of pixels is alive at a time.
type Runner struct {
	det     detect.Detector
	tr      *Tracker
	rt      obs.Runtime
	dspan   *obs.Span
	tspan   *obs.Span
	nFrames int64
	nDets   int64
}

// NewRunnerRT builds a windowed runner; detectors implementing
// obs.SpanSetter are rebound to the runner's detect span as in RunRT.
func NewRunnerRT(det detect.Detector, cfg Config, rt obs.Runtime) *Runner {
	dspan := rt.Span.Child("detect")
	if s, ok := det.(obs.SpanSetter); ok {
		s.SetSpan(dspan)
	}
	return &Runner{
		det:   det,
		tr:    New(cfg),
		rt:    rt,
		dspan: dspan,
		tspan: rt.Span.Child("track"),
	}
}

// Window detects the next consecutive run of frames on the pool and folds
// them through the tracker in frame order.
func (r *Runner) Window(frames []*img.Image) error {
	type detResult struct {
		dets []detect.Detection
		err  error
	}
	results := par.MapPool(r.rt.Pool, len(frames), 1, func(i int) detResult {
		ds, err := r.det.Detect(frames[i])
		return detResult{dets: ds, err: err}
	})
	r.nFrames += int64(len(frames))
	for i, f := range frames {
		if results[i].err != nil {
			return results[i].err
		}
		r.nDets += int64(len(results[i].dets))
		if err := r.tr.Step(f, results[i].dets); err != nil {
			return err
		}
	}
	return nil
}

// Finish closes the spans with their totals and returns the confirmed
// tracks.
func (r *Runner) Finish() (*motio.TrackSet, error) {
	set := r.tr.Tracks()
	r.dspan.Add(obs.CFramesDetected, r.nFrames)
	r.dspan.Add(obs.CDetections, r.nDets)
	r.dspan.End()
	r.tspan.Add(obs.CFramesTracked, r.nFrames)
	r.tspan.Add(obs.CTracksConfirmed, int64(len(set.Tracks)))
	r.tspan.End()
	return set, nil
}
