package track

import (
	"testing"

	"verro/internal/detect"
	"verro/internal/geom"
	"verro/internal/img"
	"verro/internal/scene"
)

// synthDetections builds a frame sequence with two objects moving on known
// paths and returns frames plus per-frame perfect detections.
func twoObjectSequence(n int) (frames []*img.Image, dets [][]detect.Detection, paths [2][]geom.Rect) {
	for k := 0; k < n; k++ {
		f := img.NewFilled(128, 96, img.RGB{R: 90, G: 90, B: 90})
		b1 := geom.RectAt(5+3*k, 20, 8, 16)
		b2 := geom.RectAt(110-3*k, 60, 8, 16)
		f.Fill(b1, img.RGB{R: 220, G: 50, B: 50})
		f.Fill(b2, img.RGB{R: 50, G: 50, B: 220})
		frames = append(frames, f)
		dets = append(dets, []detect.Detection{
			{Box: b1, Score: 1},
			{Box: b2, Score: 1},
		})
		paths[0] = append(paths[0], b1)
		paths[1] = append(paths[1], b2)
	}
	return frames, dets, paths
}

func TestTrackerMaintainsTwoIDs(t *testing.T) {
	frames, dets, _ := twoObjectSequence(20)
	tr := New(DefaultConfig())
	for k := range frames {
		if err := tr.Step(frames[k], dets[k]); err != nil {
			t.Fatal(err)
		}
	}
	set := tr.Tracks()
	if set.Len() != 2 {
		t.Fatalf("tracks = %d, want 2", set.Len())
	}
	for _, trk := range set.Tracks {
		if trk.Len() < 15 {
			t.Fatalf("track %d covers only %d frames", trk.ID, trk.Len())
		}
	}
}

func TestTrackerIDsStableThroughCrossing(t *testing.T) {
	// The two objects pass each other around frame 17 (x: 5+3k vs 110-3k).
	frames, dets, paths := twoObjectSequence(35)
	tr := New(DefaultConfig())
	for k := range frames {
		if err := tr.Step(frames[k], dets[k]); err != nil {
			t.Fatal(err)
		}
	}
	set := tr.Tracks()
	if set.Len() < 2 {
		t.Fatalf("tracks = %d", set.Len())
	}
	// Identify which track corresponds to path 0 at an early frame, then
	// verify it still follows path 0 late (no identity swap). Objects are at
	// different y so association should be easy.
	var early, late *int
	for _, trk := range set.Tracks {
		if b, ok := trk.Box(5); ok && geom.IoU(b, paths[0][5]) > 0.5 {
			id := trk.ID
			early = &id
		}
		if b, ok := trk.Box(30); ok && geom.IoU(b, paths[0][30]) > 0.5 {
			id := trk.ID
			late = &id
		}
	}
	if early == nil || late == nil {
		t.Fatal("could not locate path-0 track")
	}
	if *early != *late {
		t.Fatalf("identity switch: %d -> %d", *early, *late)
	}
}

func TestTrackerSurvivesMissedDetections(t *testing.T) {
	frames, dets, _ := twoObjectSequence(20)
	// Drop all detections in frames 8-10 (occlusion).
	for k := 8; k <= 10; k++ {
		dets[k] = nil
	}
	tr := New(DefaultConfig())
	for k := range frames {
		if err := tr.Step(frames[k], dets[k]); err != nil {
			t.Fatal(err)
		}
	}
	set := tr.Tracks()
	if set.Len() != 2 {
		t.Fatalf("tracks = %d, want 2 (no new IDs after occlusion)", set.Len())
	}
}

func TestTrackerDropsGhostTracks(t *testing.T) {
	// A detection appears once and never again: it must not become a
	// confirmed track.
	tr := New(DefaultConfig())
	f := img.NewFilled(64, 48, img.RGB{R: 80, G: 80, B: 80})
	if err := tr.Step(f, []detect.Detection{{Box: geom.RectAt(10, 10, 6, 12), Score: 1}}); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		if err := tr.Step(f, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.Tracks().Len(); got != 0 {
		t.Fatalf("ghost produced %d confirmed tracks", got)
	}
}

func TestTrackerNilFrame(t *testing.T) {
	tr := New(DefaultConfig())
	if err := tr.Step(nil, nil); err == nil {
		t.Fatal("nil frame should fail")
	}
}

func TestTrackerZeroConfigGetsDefaults(t *testing.T) {
	tr := New(Config{})
	f := img.NewFilled(32, 32, img.RGB{R: 10, G: 10, B: 10})
	if err := tr.Step(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunOnGeneratedScene(t *testing.T) {
	p := scene.Preset{
		Name: "track-test", W: 96, H: 72, Frames: 40, Objects: 4,
		FPS: 30, Style: scene.StyleSquare, Class: scene.Pedestrian, Seed: 51,
	}
	g, err := scene.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := detect.MedianBackground(g.Video.Frames, 2)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Run(g.Video.Frames, detect.NewBGSubtractor(bg), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() == 0 {
		t.Fatal("no tracks recovered from generated scene")
	}
	// The tracker should find a number of objects in the same ballpark as
	// the ground truth (fragmentation can add a few).
	if set.Len() > g.Truth.Len()*3 {
		t.Fatalf("excessive fragmentation: %d tracks for %d objects", set.Len(), g.Truth.Len())
	}
}

func TestPadForbidden(t *testing.T) {
	cost := [][]float64{{1, 2}, {3, 4}}
	padded := padForbidden(cost)
	if len(padded) != 2 || len(padded[0]) != 4 {
		t.Fatalf("padded dims %dx%d", len(padded), len(padded[0]))
	}
	if padded[0][2] != 1e6 || padded[1][3] != 1e6 {
		t.Fatal("padding values wrong")
	}
	if got := padForbidden(nil); got != nil {
		t.Fatal("empty input should pass through")
	}
}
