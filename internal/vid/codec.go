package vid

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"verro/internal/img"
)

// The .vvf container: a small header followed by gzip-compressed frame
// payloads. The first frame is stored raw; every subsequent frame is stored
// as the byte-wise delta from its predecessor, which compresses extremely
// well for surveillance footage where consecutive frames are near-identical
// — the same temporal redundancy the paper's key-frame extraction exploits.

const (
	vvfMagic   = "VVF1"
	maxFrames  = 1 << 20
	maxDim     = 1 << 14
	frameRaw   = 0
	frameDelta = 1
)

// ErrFormat reports a malformed .vvf stream.
var ErrFormat = errors.New("vid: invalid vvf stream")

// Encode writes v to w in .vvf format and returns the number of compressed
// payload bytes written (the "bandwidth" of Table 3).
func Encode(w io.Writer, v *Video) (int64, error) {
	cw := &countWriter{w: w}
	bw := bufio.NewWriter(cw)

	if _, err := bw.WriteString(vvfMagic); err != nil {
		return 0, err
	}
	header := []any{
		uint32(v.W), uint32(v.H), uint32(len(v.Frames)),
		math.Float64bits(v.FPS), boolByte(v.Moving),
		uint16(len(v.Name)),
	}
	for _, h := range header {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return 0, err
		}
	}
	if _, err := bw.WriteString(v.Name); err != nil {
		return 0, err
	}

	zw, err := gzip.NewWriterLevel(bw, gzip.BestSpeed)
	if err != nil {
		return 0, err
	}
	var prev []uint8
	buf := make([]uint8, 0)
	for i, f := range v.Frames {
		kind := byte(frameRaw)
		payload := f.Pix
		if i > 0 {
			kind = frameDelta
			if cap(buf) < len(f.Pix) {
				buf = make([]uint8, len(f.Pix))
			}
			buf = buf[:len(f.Pix)]
			for j := range f.Pix {
				buf[j] = f.Pix[j] - prev[j]
			}
			payload = buf
		}
		if _, err := zw.Write([]byte{kind}); err != nil {
			return 0, err
		}
		if _, err := zw.Write(payload); err != nil {
			return 0, err
		}
		prev = f.Pix
	}
	if err := zw.Close(); err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return cw.n, nil
}

// Decode reads a .vvf stream back into a Video.
func Decode(r io.Reader) (*Video, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(vvfMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if string(magic) != vvfMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, magic)
	}
	var w32, h32, n32 uint32
	var fpsBits uint64
	var moving uint8
	var nameLen uint16
	for _, dst := range []any{&w32, &h32, &n32, &fpsBits, &moving, &nameLen} {
		if err := binary.Read(br, binary.LittleEndian, dst); err != nil {
			return nil, fmt.Errorf("%w: header: %v", ErrFormat, err)
		}
	}
	if w32 > maxDim || h32 > maxDim || n32 > maxFrames {
		return nil, fmt.Errorf("%w: implausible geometry %dx%d×%d", ErrFormat, w32, h32, n32)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("%w: name: %v", ErrFormat, err)
	}

	v := New(string(name), int(w32), int(h32), math.Float64frombits(fpsBits))
	v.Moving = moving != 0

	zr, err := gzip.NewReader(br)
	if err != nil {
		return nil, fmt.Errorf("%w: gzip: %v", ErrFormat, err)
	}
	defer zr.Close()

	frameBytes := int(w32) * int(h32) * 3
	var prev []uint8
	for i := 0; i < int(n32); i++ {
		kind := make([]byte, 1)
		if _, err := io.ReadFull(zr, kind); err != nil {
			return nil, fmt.Errorf("%w: frame %d kind: %v", ErrFormat, i, err)
		}
		pix := make([]uint8, frameBytes)
		if _, err := io.ReadFull(zr, pix); err != nil {
			return nil, fmt.Errorf("%w: frame %d payload: %v", ErrFormat, i, err)
		}
		switch kind[0] {
		case frameRaw:
		case frameDelta:
			if prev == nil {
				return nil, fmt.Errorf("%w: delta frame %d without base", ErrFormat, i)
			}
			for j := range pix {
				pix[j] += prev[j]
			}
		default:
			return nil, fmt.Errorf("%w: frame %d unknown kind %d", ErrFormat, i, kind[0])
		}
		f := &img.Image{W: v.W, H: v.H, Pix: pix}
		v.Frames = append(v.Frames, f)
		prev = pix
	}
	return v, nil
}

// WriteFile saves v to path in .vvf format, creating parent directories, and
// returns the compressed size in bytes.
func WriteFile(path string, v *Video) (int64, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return 0, err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	n, err := Encode(f, v)
	if err != nil {
		f.Close()
		return 0, err
	}
	return n, f.Close()
}

// ReadFile loads a .vvf video from disk.
func ReadFile(path string) (*Video, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// EncodedSize returns the compressed byte size of v without keeping the
// stream — the Table 3 "bandwidth" figure.
func EncodedSize(v *Video) (int64, error) {
	return Encode(io.Discard, v)
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
