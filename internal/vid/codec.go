package vid

import (
	"compress/gzip"
	"errors"
	"io"
	"os"
	"path/filepath"
)

// The .vvf container: a small header followed by gzip-compressed frame
// payloads. The first frame is stored raw; every subsequent frame is stored
// as the byte-wise delta from its predecessor, which compresses extremely
// well for surveillance footage where consecutive frames are near-identical
// — the same temporal redundancy the paper's key-frame extraction exploits.
//
// The codec itself lives in stream.go as a windowed Writer/Reader pair;
// the whole-video Encode/Decode entry points here are wrappers over them,
// so the batch and streaming paths share one implementation and their
// byte streams are identical by construction.

const (
	vvfMagic   = "VVF1"
	maxFrames  = 1 << 20
	maxDim     = 1 << 14
	frameRaw   = 0
	frameDelta = 1
)

// ErrFormat reports a malformed .vvf stream.
var ErrFormat = errors.New("vid: invalid vvf stream")

// newVVFCompressor wraps w in the container's compressor (gzip at
// BestSpeed). Both the batch and windowed writers go through here so the
// compressed stream never depends on which path produced it.
func newVVFCompressor(w io.Writer) (io.WriteCloser, error) {
	return gzip.NewWriterLevel(w, gzip.BestSpeed)
}

// newVVFDecompressor opens the container's decompressor over r.
func newVVFDecompressor(r io.Reader) (io.ReadCloser, error) {
	return gzip.NewReader(r)
}

// Encode writes v to w in .vvf format and returns the number of compressed
// payload bytes written (the "bandwidth" of Table 3).
func Encode(w io.Writer, v *Video) (int64, error) {
	sw, err := NewWriter(w, MetaOf(v))
	if err != nil {
		return 0, err
	}
	if err := sw.Append(v.Frames); err != nil {
		return 0, err
	}
	if err := sw.Close(); err != nil {
		return 0, err
	}
	return sw.Written(), nil
}

// Decode reads a .vvf stream back into a Video.
func Decode(r io.Reader) (*Video, error) {
	sr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	meta := sr.Meta()
	v := New(meta.Name, meta.W, meta.H, meta.FPS)
	v.Moving = meta.Moving
	for {
		frames, _, err := sr.Next(0)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		v.Frames = append(v.Frames, frames...)
	}
	return v, nil
}

// WriteFile saves v to path in .vvf format, creating parent directories, and
// returns the compressed size in bytes.
func WriteFile(path string, v *Video) (int64, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return 0, err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	n, err := Encode(f, v)
	if err != nil {
		f.Close()
		return 0, err
	}
	return n, f.Close()
}

// ReadFile loads a .vvf video from disk.
func ReadFile(path string) (*Video, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// EncodedSize returns the compressed .vvf size of v without keeping the
// stream — the Table 3 "bandwidth" figure.
func EncodedSize(v *Video) (int64, error) {
	return Encode(io.Discard, v)
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
