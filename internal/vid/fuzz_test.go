package vid

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"verro/internal/img"
)

func newRandomFrame(rng *rand.Rand, w, h int) *img.Image {
	f := img.New(w, h)
	for i := range f.Pix {
		f.Pix[i] = uint8(rng.Intn(256))
	}
	return f
}

// TestDecodeNeverPanicsOnRandomInput feeds the codec random byte soup: it
// must return an error (or, vanishingly unlikely, a valid video) and never
// panic or over-allocate.
func TestDecodeNeverPanicsOnRandomInput(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %d bytes: %v", len(data), r)
			}
		}()
		_, _ = Decode(bytes.NewReader(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeNeverPanicsOnCorruptedValidStream flips random bytes in a
// well-formed stream.
func TestDecodeNeverPanicsOnCorruptedValidStream(t *testing.T) {
	v := testVideo(t, 5)
	var buf bytes.Buffer
	if _, err := Encode(&buf, v); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		corrupted := append([]byte(nil), valid...)
		flips := 1 + rng.Intn(8)
		for i := 0; i < flips; i++ {
			pos := rng.Intn(len(corrupted))
			corrupted[pos] ^= byte(1 << rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on corrupted stream (trial %d): %v", trial, r)
				}
			}()
			_, _ = Decode(bytes.NewReader(corrupted))
		}()
	}
}

// TestCodecRoundTripRandomVideos is a property test: arbitrary small
// videos survive the codec bit-exactly.
func TestCodecRoundTripRandomVideos(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		w := 1 + rng.Intn(24)
		h := 1 + rng.Intn(24)
		frames := rng.Intn(6)
		v := New("prop", w, h, float64(1+rng.Intn(60)))
		v.Moving = rng.Intn(2) == 0
		for i := 0; i < frames; i++ {
			fr := newRandomFrame(rng, w, h)
			if err := v.Append(fr); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if _, err := Encode(&buf, v); err != nil {
			t.Fatalf("trial %d encode: %v", trial, err)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatalf("trial %d decode: %v", trial, err)
		}
		if back.Len() != v.Len() || back.W != v.W || back.H != v.H {
			t.Fatalf("trial %d shape mismatch", trial)
		}
		for i := range v.Frames {
			if !v.Frame(i).Equal(back.Frame(i)) {
				t.Fatalf("trial %d frame %d differs", trial, i)
			}
		}
	}
}
