package vid

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"verro/internal/img"
	"verro/internal/stream"
)

// RawStore is the crash-tolerant staging half of a resumable sanitization
// job: an append-only file of uncompressed frames (W·H·3 bytes each, no
// header, no delta coding) that — unlike the gzip-compressed .vvf stream —
// can be reopened after a crash and truncated to the last checkpointed
// frame boundary, then appended to as if the process had never died.
//
// The final artifact is produced by EncodeTo, which streams the staged
// frames through the ordinary windowed Writer: because that pass always
// reads from frame 0 in one continuous run, the resulting .vvf is
// byte-identical whether the staging file was written in one uninterrupted
// run or across any number of kill/resume cycles — the compressed stream
// never observes where the interruptions fell.
type RawStore struct {
	f        *os.File
	path     string
	w, h     int
	frames   int
	closed   bool
	closeErr error
}

// frameBytes is the fixed on-disk size of one staged frame.
func (s *RawStore) frameBytes() int { return s.w * s.h * 3 }

// CreateRawStore creates (or truncates) a staging file for frames of the
// given geometry.
func CreateRawStore(path string, w, h int) (*RawStore, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("vid: raw store geometry %dx%d", w, h)
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &RawStore{f: f, path: path, w: w, h: h}, nil
}

// OpenRawStore reopens an existing staging file at a checkpointed frame
// count: the file is truncated to exactly frames complete frames (dropping
// any bytes a crash left beyond the last checkpoint, including partially
// written frames) and positioned to append frame `frames` next. It fails if
// the file holds fewer complete frames than the checkpoint claims — that
// inconsistency means the checkpoint cannot be trusted and the job must
// restart from scratch.
func OpenRawStore(path string, w, h, frames int) (*RawStore, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("vid: raw store geometry %dx%d", w, h)
	}
	if frames < 0 {
		return nil, fmt.Errorf("vid: negative checkpoint %d", frames)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	s := &RawStore{f: f, path: path, w: w, h: h}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	want := int64(frames) * int64(s.frameBytes())
	if info.Size() < want {
		f.Close()
		return nil, fmt.Errorf("vid: staging file %s holds %d bytes, checkpoint %d frames needs %d",
			path, info.Size(), frames, want)
	}
	if info.Size() > want {
		if err := f.Truncate(want); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(want, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	s.frames = frames
	return s, nil
}

// Frames reports how many complete frames the store holds.
func (s *RawStore) Frames() int { return s.frames }

// Path reports the staging file's location.
func (s *RawStore) Path() string { return s.path }

// Append implements stream.Sink: it writes the next consecutive run of
// frames. A torn write (process killed mid-call) leaves a tail beyond the
// last checkpoint that OpenRawStore truncates away on resume.
func (s *RawStore) Append(frames []*img.Image) error {
	if s.closed {
		return fmt.Errorf("vid: append to closed raw store")
	}
	for _, fr := range frames {
		if fr.W != s.w || fr.H != s.h {
			return fmt.Errorf("vid: frame %dx%d does not match store %dx%d", fr.W, fr.H, s.w, s.h)
		}
		if _, err := s.f.Write(fr.Pix); err != nil {
			return err
		}
		s.frames++
	}
	return nil
}

// Sync flushes appended frames to stable storage. Checkpointing callers
// sync the staging file before persisting the new frame count so the
// manifest never promises frames the disk does not hold.
func (s *RawStore) Sync() error {
	if s.closed {
		return fmt.Errorf("vid: sync of closed raw store")
	}
	return s.f.Sync()
}

// Close releases the file. Idempotent: a second call returns the first
// result. The staging file stays on disk for a later OpenRawStore (or
// removal by the job owner).
func (s *RawStore) Close() error {
	if s.closed {
		return s.closeErr
	}
	s.closed = true
	s.closeErr = s.f.Close()
	return s.closeErr
}

// EncodeTo streams the staged frames through the windowed .vvf Writer into
// w, reading at most window frames at a time (window <= 0 means all at
// once), and returns the compressed byte count. meta must promise exactly
// the staged frame count. The store must be complete before encoding;
// appends remain valid afterwards only in the sense that the staging file
// is untouched — EncodeTo reads through its own file handle.
func (s *RawStore) EncodeTo(out io.Writer, meta stream.Meta, window int) (int64, error) {
	if meta.W != s.w || meta.H != s.h {
		return 0, fmt.Errorf("vid: encode meta %dx%d does not match store %dx%d", meta.W, meta.H, s.w, s.h)
	}
	if meta.Frames != s.frames {
		return 0, fmt.Errorf("vid: encode meta promises %d frames, store holds %d", meta.Frames, s.frames)
	}
	r, err := os.Open(s.path)
	if err != nil {
		return 0, err
	}
	defer r.Close()
	w, err := NewWriter(out, meta)
	if err != nil {
		return 0, err
	}
	if window <= 0 {
		window = s.frames
	}
	fb := s.frameBytes()
	for done := 0; done < s.frames; {
		n := window
		if done+n > s.frames {
			n = s.frames - done
		}
		batch := make([]*img.Image, n)
		for i := range batch {
			pix := make([]uint8, fb)
			if _, err := io.ReadFull(r, pix); err != nil {
				return 0, fmt.Errorf("vid: staged frame %d: %w", done+i, err)
			}
			batch[i] = &img.Image{W: s.w, H: s.h, Pix: pix}
		}
		if err := w.Append(batch); err != nil {
			return 0, err
		}
		done += n
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	return w.Written(), nil
}
