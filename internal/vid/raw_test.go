package vid

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestFileSinkIdempotentClose: a failed frame-count-mismatch close must
// return the same error on every subsequent call (never an fd double-close
// error), and a successful close must keep returning nil.
func TestFileSinkIdempotentClose(t *testing.T) {
	v := streamTestVideo(5)
	dir := t.TempDir()

	short, err := CreateFileSink(filepath.Join(dir, "short.vvf"), MetaOf(v))
	if err != nil {
		t.Fatal(err)
	}
	if err := short.Append(v.Frames[:2]); err != nil {
		t.Fatal(err)
	}
	first := short.Close()
	if first == nil {
		t.Fatal("closing after 2/5 frames must fail")
	}
	if again := short.Close(); again != first {
		t.Fatalf("second close = %v, want the first result %v", again, first)
	}

	ok, err := CreateFileSink(filepath.Join(dir, "ok.vvf"), MetaOf(v))
	if err != nil {
		t.Fatal(err)
	}
	if err := ok.Append(v.Frames); err != nil {
		t.Fatal(err)
	}
	if err := ok.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ok.Close(); err != nil {
		t.Fatalf("second close after success = %v, want nil", err)
	}
}

// TestRawStoreAppendReopenEncode is the staging-file contract: frames
// appended across a reopen (with a torn tail truncated away) must encode to
// a .vvf byte-identical to the batch encoder's output for the same clip.
func TestRawStoreAppendReopenEncode(t *testing.T) {
	v := streamTestVideo(9)
	dir := t.TempDir()
	path := filepath.Join(dir, "frames.raw")

	s, err := CreateRawStore(path, v.W, v.H)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(v.Frames[:4]); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// Frames beyond the "checkpoint" at 4, as a crash-after-checkpoint
	// leaves behind — including a torn partial frame at the very end.
	if err := s.Append(v.Frames[4:6]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(v.Frames[6].Pix[:7]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume from the checkpoint: everything after frame 4 is dropped.
	s2, err := OpenRawStore(path, v.W, v.H, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Frames() != 4 {
		t.Fatalf("reopened store holds %d frames, want 4", s2.Frames())
	}
	if err := s2.Append(v.Frames[4:]); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	n, err := s2.EncodeTo(&got, MetaOf(v), 4)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(got.Len()) {
		t.Fatalf("EncodeTo reports %d bytes, wrote %d", n, got.Len())
	}
	var want bytes.Buffer
	if _, err := Encode(&want, v); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("resumed staging encode differs from batch Encode")
	}

	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("second close = %v, want nil", err)
	}
}

// TestRawStoreRejectsInconsistency: a checkpoint claiming more frames than
// the staging file holds, mismatched geometry, and encode-meta drift must
// all fail loudly instead of producing silent garbage.
func TestRawStoreRejectsInconsistency(t *testing.T) {
	v := streamTestVideo(3)
	dir := t.TempDir()
	path := filepath.Join(dir, "frames.raw")
	s, err := CreateRawStore(path, v.W, v.H)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(v.Frames[:2]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenRawStore(path, v.W, v.H, 3); err == nil {
		t.Fatal("checkpoint beyond the staged frames must be rejected")
	}
	if _, err := OpenRawStore(path, v.W, v.H, -1); err == nil {
		t.Fatal("negative checkpoint must be rejected")
	}

	s2, err := OpenRawStore(path, v.W, v.H, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	wrong := streamTestVideo(1)
	wrong.Frames[0] = wrong.Frames[0].Clone()
	wrong.Frames[0].W++ // geometry mismatch
	wrong.Frames[0].Pix = append(wrong.Frames[0].Pix, 0)
	if err := s2.Append(wrong.Frames); err == nil {
		t.Fatal("geometry-mismatched append must be rejected")
	}
	meta := MetaOf(v)
	meta.Frames = 5
	if _, err := s2.EncodeTo(&bytes.Buffer{}, meta, 0); err == nil {
		t.Fatal("encode meta promising the wrong frame count must be rejected")
	}
}
