package vid

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"verro/internal/img"
	"verro/internal/stream"
)

// Windowed .vvf codec: Writer and Reader process a .vvf stream a bounded
// run of frames at a time, holding only the previous frame (for the delta
// coding) plus the frames of the current window. The batch Encode/Decode
// entry points in codec.go are thin wrappers over these, so the container
// format cannot drift between the batch and streaming paths: an
// incrementally written stream is byte-identical to a batch-encoded one.

// MetaOf summarizes a video's header fields as streaming metadata.
func MetaOf(v *Video) stream.Meta {
	return stream.Meta{
		Name:   v.Name,
		W:      v.W,
		H:      v.H,
		FPS:    v.FPS,
		Moving: v.Moving,
		Frames: len(v.Frames),
	}
}

// Writer encodes a .vvf stream incrementally. The frame count is part of
// the header, so meta.Frames must be known up front (the VVF container is a
// file format, not a live-feed transport); Close fails if the appended
// frame count does not match it.
type Writer struct {
	cw        *countWriter
	bw        *bufio.Writer
	zw        io.WriteCloser
	prev      []uint8
	buf       []uint8
	meta      stream.Meta
	written   int
	headerErr error
	closed    bool
	closeErr  error
}

// NewWriter writes the .vvf header for meta to w and returns a Writer
// ready to accept meta.Frames frames.
func NewWriter(w io.Writer, meta stream.Meta) (*Writer, error) {
	cw := &countWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.WriteString(vvfMagic); err != nil {
		return nil, err
	}
	header := []any{
		uint32(meta.W), uint32(meta.H), uint32(meta.Frames),
		math.Float64bits(meta.FPS), boolByte(meta.Moving),
		uint16(len(meta.Name)),
	}
	for _, h := range header {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return nil, err
		}
	}
	if _, err := bw.WriteString(meta.Name); err != nil {
		return nil, err
	}
	zw, err := newVVFCompressor(bw)
	if err != nil {
		return nil, err
	}
	return &Writer{cw: cw, bw: bw, zw: zw, meta: meta}, nil
}

// Append encodes the next consecutive run of frames.
func (w *Writer) Append(frames []*img.Image) error {
	if w.closed {
		return fmt.Errorf("vid: append to closed writer")
	}
	if w.written+len(frames) > w.meta.Frames {
		return fmt.Errorf("vid: %d frames appended, header promises %d",
			w.written+len(frames), w.meta.Frames)
	}
	for _, f := range frames {
		if f.W != w.meta.W || f.H != w.meta.H {
			return fmt.Errorf("vid: frame %dx%d does not match video %dx%d",
				f.W, f.H, w.meta.W, w.meta.H)
		}
		kind := byte(frameRaw)
		payload := f.Pix
		if w.written > 0 {
			kind = frameDelta
			if cap(w.buf) < len(f.Pix) {
				w.buf = make([]uint8, len(f.Pix))
			}
			w.buf = w.buf[:len(f.Pix)]
			for j := range f.Pix {
				w.buf[j] = f.Pix[j] - w.prev[j]
			}
			payload = w.buf
		}
		if _, err := w.zw.Write([]byte{kind}); err != nil {
			return err
		}
		if _, err := w.zw.Write(payload); err != nil {
			return err
		}
		// Retain the raw pixels (not the delta buffer) as the delta base;
		// this keeps exactly one frame alive between windows.
		if cap(w.prev) < len(f.Pix) {
			w.prev = make([]uint8, len(f.Pix))
		}
		w.prev = w.prev[:len(f.Pix)]
		copy(w.prev, f.Pix)
		w.written++
	}
	return nil
}

// Close finalizes the stream. It fails when fewer frames were appended
// than the header promised. Close is idempotent: a second call returns the
// first call's result instead of re-finalizing, so defer-based cleanup
// composes with an explicit success-path close.
func (w *Writer) Close() error {
	if w.closed {
		return w.closeErr
	}
	w.closed = true
	if w.written != w.meta.Frames {
		w.closeErr = fmt.Errorf("vid: closed after %d frames, header promises %d",
			w.written, w.meta.Frames)
		return w.closeErr
	}
	if err := w.zw.Close(); err != nil {
		w.closeErr = err
		return err
	}
	w.closeErr = w.bw.Flush()
	return w.closeErr
}

// Written reports the bytes emitted so far (the Table 3 "bandwidth" figure
// once Close has flushed).
func (w *Writer) Written() int64 { return w.cw.n }

// Reader decodes a .vvf stream incrementally: the header is parsed by
// NewReader and frames are surfaced in bounded runs by Next, keeping only
// the previous frame as the delta base.
type Reader struct {
	zr   io.ReadCloser
	meta stream.Meta
	pos  int
	prev []uint8
}

// NewReader parses the .vvf header from r and returns a Reader positioned
// at frame 0.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(vvfMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if string(magic) != vvfMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, magic)
	}
	var w32, h32, n32 uint32
	var fpsBits uint64
	var moving uint8
	var nameLen uint16
	for _, dst := range []any{&w32, &h32, &n32, &fpsBits, &moving, &nameLen} {
		if err := binary.Read(br, binary.LittleEndian, dst); err != nil {
			return nil, fmt.Errorf("%w: header: %v", ErrFormat, err)
		}
	}
	if w32 > maxDim || h32 > maxDim || n32 > maxFrames {
		return nil, fmt.Errorf("%w: implausible geometry %dx%d×%d", ErrFormat, w32, h32, n32)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("%w: name: %v", ErrFormat, err)
	}
	zr, err := newVVFDecompressor(br)
	if err != nil {
		return nil, fmt.Errorf("%w: gzip: %v", ErrFormat, err)
	}
	return &Reader{
		zr: zr,
		meta: stream.Meta{
			Name:   string(name),
			W:      int(w32),
			H:      int(h32),
			FPS:    math.Float64frombits(fpsBits),
			Moving: moving != 0,
			Frames: int(n32),
		},
	}, nil
}

// Meta describes the stream being decoded.
func (r *Reader) Meta() stream.Meta { return r.meta }

// Next decodes the next run of at most budget frames (budget <= 0 decodes
// all remaining) and returns them with the absolute index of the first.
// It returns io.EOF once all header-promised frames have been surfaced.
func (r *Reader) Next(budget int) ([]*img.Image, int, error) {
	if r.pos >= r.meta.Frames {
		return nil, r.pos, io.EOF
	}
	end := r.meta.Frames
	if budget > 0 && r.pos+budget < end {
		end = r.pos + budget
	}
	start := r.pos
	frameBytes := r.meta.W * r.meta.H * 3
	out := make([]*img.Image, 0, end-start)
	kind := make([]byte, 1)
	for r.pos < end {
		if _, err := io.ReadFull(r.zr, kind); err != nil {
			return nil, start, fmt.Errorf("%w: frame %d kind: %v", ErrFormat, r.pos, err)
		}
		pix := make([]uint8, frameBytes)
		if _, err := io.ReadFull(r.zr, pix); err != nil {
			return nil, start, fmt.Errorf("%w: frame %d payload: %v", ErrFormat, r.pos, err)
		}
		switch kind[0] {
		case frameRaw:
		case frameDelta:
			if r.prev == nil {
				return nil, start, fmt.Errorf("%w: delta frame %d without base", ErrFormat, r.pos)
			}
			for j := range pix {
				pix[j] += r.prev[j]
			}
		default:
			return nil, start, fmt.Errorf("%w: frame %d unknown kind %d", ErrFormat, r.pos, kind[0])
		}
		out = append(out, &img.Image{W: r.meta.W, H: r.meta.H, Pix: pix})
		r.prev = pix
		r.pos++
	}
	return out, start, nil
}

// Close releases the decompressor.
func (r *Reader) Close() error { return r.zr.Close() }

// FileSource is a stream.Source backed by a .vvf file: frames are decoded
// window by window straight from disk, and Reset rewinds the file for
// multi-pass pipelines. Peak memory is O(window), never O(clip).
type FileSource struct {
	f    *os.File
	r    *Reader
	meta stream.Meta
}

// OpenFileSource opens path and parses its header.
func OpenFileSource(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileSource{f: f, r: r, meta: r.Meta()}, nil
}

// Meta implements stream.Source.
func (s *FileSource) Meta() stream.Meta { return s.meta }

// Next implements stream.Source.
func (s *FileSource) Next(budget int) ([]*img.Image, int, error) {
	return s.r.Next(budget)
}

// Reset implements stream.Source: it rewinds the file and re-parses the
// header so the next Next call surfaces frame 0 again.
func (s *FileSource) Reset() error {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r, err := NewReader(s.f)
	if err != nil {
		return err
	}
	s.r = r
	return nil
}

// Close implements stream.Source.
func (s *FileSource) Close() error { return s.f.Close() }

// FileSink is a stream.Sink that encodes output windows straight to a .vvf
// file as they arrive.
type FileSink struct {
	f        *os.File
	w        *Writer
	closed   bool
	closeErr error
}

// CreateFileSink creates path (and parent directories) and writes the
// header for meta; the windows appended afterwards must total meta.Frames.
func CreateFileSink(path string, meta stream.Meta) (*FileSink, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w, err := NewWriter(f, meta)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileSink{f: f, w: w}, nil
}

// Append implements stream.Sink.
func (s *FileSink) Append(frames []*img.Image) error { return s.w.Append(frames) }

// Close implements stream.Sink: it finalizes the compressed stream and the
// file. The frame-count check of Writer.Close applies. Close is idempotent —
// a second call returns the first call's result rather than a double-close
// fd error — so a caller's `defer sink.Close()` cleanup composes with the
// success-path close inside core.SanitizeStream.
func (s *FileSink) Close() error {
	if s.closed {
		return s.closeErr
	}
	s.closed = true
	if err := s.w.Close(); err != nil {
		s.f.Close()
		s.closeErr = err
		return err
	}
	s.closeErr = s.f.Close()
	return s.closeErr
}

// Written reports the bytes written so far (complete after Close).
func (s *FileSink) Written() int64 { return s.w.Written() }
