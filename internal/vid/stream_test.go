package vid

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"verro/internal/img"
)

// testVideo builds a deterministic n-frame video with enough per-frame
// variation to exercise both raw and delta coding.
func streamTestVideo(n int) *Video {
	v := New("stream-test", 16, 12, 25)
	v.Moving = true
	for k := 0; k < n; k++ {
		f := img.New(16, 12)
		for i := range f.Pix {
			f.Pix[i] = uint8((i*3 + k*17) % 256)
		}
		v.Frames = append(v.Frames, f)
	}
	return v
}

// TestWriterMatchesEncode proves the windowed writer emits byte-identical
// streams to the batch encoder, whatever the append granularity.
func TestWriterMatchesEncode(t *testing.T) {
	v := streamTestVideo(11)
	var batch bytes.Buffer
	if _, err := Encode(&batch, v); err != nil {
		t.Fatal(err)
	}
	for _, window := range []int{1, 3, 4, 11, 64} {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, MetaOf(v))
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < v.Len(); lo += window {
			hi := lo + window
			if hi > v.Len() {
				hi = v.Len()
			}
			if err := w.Append(v.Frames[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(batch.Bytes(), buf.Bytes()) {
			t.Fatalf("window=%d: incremental stream differs from batch Encode", window)
		}
		if w.Written() != int64(buf.Len()) {
			t.Fatalf("window=%d: Written()=%d, wrote %d bytes", window, w.Written(), buf.Len())
		}
	}
}

// TestReaderMatchesDecode proves windowed decoding reproduces the batch
// decoder frame for frame at every window size, including partial tails.
func TestReaderMatchesDecode(t *testing.T) {
	v := streamTestVideo(10)
	var buf bytes.Buffer
	if _, err := Encode(&buf, v); err != nil {
		t.Fatal(err)
	}
	for _, window := range []int{1, 3, 10, 0, 99} {
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if m := r.Meta(); m.Name != v.Name || m.W != v.W || m.H != v.H ||
			m.FPS != v.FPS || m.Moving != v.Moving || m.Frames != v.Len() {
			t.Fatalf("window=%d: meta %+v does not match video", window, m)
		}
		got := 0
		for {
			frames, start, err := r.Next(window)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if start != got {
				t.Fatalf("window=%d: run starts at %d, want %d", window, start, got)
			}
			for i, f := range frames {
				if !bytes.Equal(f.Pix, v.Frames[start+i].Pix) {
					t.Fatalf("window=%d: frame %d differs", window, start+i)
				}
			}
			got += len(frames)
		}
		if got != v.Len() {
			t.Fatalf("window=%d: decoded %d frames, want %d", window, got, v.Len())
		}
	}
}

func TestWriterFrameCountEnforced(t *testing.T) {
	v := streamTestVideo(4)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, MetaOf(v))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(v.Frames[:2]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("short close did not fail")
	}

	w2, err := NewWriter(&buf, MetaOf(v))
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(v.Frames); err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(v.Frames[:1]); err == nil {
		t.Fatal("over-append did not fail")
	}
}

func TestFileSourceResetAndSink(t *testing.T) {
	v := streamTestVideo(9)
	dir := t.TempDir()
	in := filepath.Join(dir, "in.vvf")
	if _, err := WriteFile(in, v); err != nil {
		t.Fatal(err)
	}

	src, err := OpenFileSource(in)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.Meta().Frames != 9 {
		t.Fatalf("meta frames = %d, want 9", src.Meta().Frames)
	}

	// Two passes over the same source, as the two-pass sanitizer performs.
	for pass := 0; pass < 2; pass++ {
		total := 0
		for {
			frames, start, err := src.Next(4)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			for i, f := range frames {
				if !bytes.Equal(f.Pix, v.Frames[start+i].Pix) {
					t.Fatalf("pass %d: frame %d differs", pass, start+i)
				}
			}
			total += len(frames)
		}
		if total != 9 {
			t.Fatalf("pass %d: read %d frames, want 9", pass, total)
		}
		if err := src.Reset(); err != nil {
			t.Fatal(err)
		}
	}

	// Stream the frames through a FileSink and compare against WriteFile.
	out := filepath.Join(dir, "out.vvf")
	sink, err := CreateFileSink(out, MetaOf(v))
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < v.Len(); lo += 4 {
		hi := lo + 4
		if hi > v.Len() {
			hi = v.Len()
		}
		if err := sink.Append(v.Frames[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("file written through FileSink differs from batch WriteFile")
	}
	back, err := ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != v.Len() || back.Name != v.Name {
		t.Fatalf("round trip lost metadata: %v", back)
	}
}
