package vid

import (
	"errors"
	"fmt"
	"image"
	"image/color"
	"image/gif"
	"os"
	"path/filepath"

	"verro/internal/img"
)

// Slice returns a new video containing frames [from, to) of v (shallow
// frame references — the frames are shared, not copied).
func (v *Video) Slice(from, to int) (*Video, error) {
	if from < 0 || to > v.Len() || from > to {
		return nil, fmt.Errorf("vid: slice [%d,%d) outside [0,%d]", from, to, v.Len())
	}
	out := New(fmt.Sprintf("%s[%d:%d]", v.Name, from, to), v.W, v.H, v.FPS)
	out.Moving = v.Moving
	out.Frames = append(out.Frames, v.Frames[from:to]...)
	return out, nil
}

// Concat appends the frames of o (which must share v's geometry) to a new
// video.
func (v *Video) Concat(o *Video) (*Video, error) {
	if v.W != o.W || v.H != o.H {
		return nil, fmt.Errorf("vid: concat geometry mismatch %dx%d vs %dx%d", v.W, v.H, o.W, o.H)
	}
	out := New(v.Name+"+"+o.Name, v.W, v.H, v.FPS)
	out.Moving = v.Moving || o.Moving
	out.Frames = append(out.Frames, v.Frames...)
	out.Frames = append(out.Frames, o.Frames...)
	return out, nil
}

// EveryNth returns a new video with every nth frame of v (n ≥ 1).
func (v *Video) EveryNth(n int) (*Video, error) {
	if n < 1 {
		return nil, errors.New("vid: stride must be >= 1")
	}
	out := New(fmt.Sprintf("%s/%d", v.Name, n), v.W, v.H, v.FPS/float64(n))
	out.Moving = v.Moving
	for i := 0; i < v.Len(); i += n {
		out.Frames = append(out.Frames, v.Frames[i])
	}
	return out, nil
}

// WriteGIF exports the video as an animated GIF (frames quantized to a
// 216-color web-safe cube plus grays), subsampled by frameStep (≥1). The
// GIF delay is derived from FPS and frameStep.
func (v *Video) WriteGIF(path string, frameStep int) error {
	if v.Len() == 0 {
		return errors.New("vid: empty video")
	}
	if frameStep < 1 {
		frameStep = 1
	}
	palette := webSafePalette()
	delay := 4 // default 25 fps
	if v.FPS > 0 {
		delay = int(100 * float64(frameStep) / v.FPS)
		if delay < 2 {
			delay = 2
		}
	}
	anim := &gif.GIF{}
	for i := 0; i < v.Len(); i += frameStep {
		anim.Image = append(anim.Image, quantize(v.Frames[i], palette))
		anim.Delay = append(anim.Delay, delay)
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := gif.EncodeAll(f, anim); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// webSafePalette is the 6×6×6 color cube plus 39 grays (255 colors,
// leaving one slot free as GIF requires ≤256).
func webSafePalette() color.Palette {
	p := make(color.Palette, 0, 255)
	for r := 0; r < 6; r++ {
		for g := 0; g < 6; g++ {
			for b := 0; b < 6; b++ {
				p = append(p, color.RGBA{uint8(r * 51), uint8(g * 51), uint8(b * 51), 255})
			}
		}
	}
	for v := 6; v < 255; v += 6 {
		if len(p) >= 255 {
			break
		}
		p = append(p, color.RGBA{uint8(v), uint8(v), uint8(v), 255})
	}
	return p
}

// quantize maps a frame onto the palette.
func quantize(m *img.Image, p color.Palette) *image.Paletted {
	out := image.NewPaletted(image.Rect(0, 0, m.W, m.H), p)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			c := m.At(x, y)
			out.Set(x, y, color.RGBA{c.R, c.G, c.B, 255})
		}
	}
	return out
}
