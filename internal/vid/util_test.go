package vid

import (
	"os"
	"testing"
)

func TestSlice(t *testing.T) {
	v := testVideo(t, 10)
	s, err := v.Slice(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if !s.Frame(0).Equal(v.Frame(2)) {
		t.Fatal("wrong frames")
	}
	if _, err := v.Slice(-1, 3); err == nil {
		t.Fatal("negative from should fail")
	}
	if _, err := v.Slice(5, 3); err == nil {
		t.Fatal("inverted range should fail")
	}
	if _, err := v.Slice(0, 99); err == nil {
		t.Fatal("overflow should fail")
	}
}

func TestConcat(t *testing.T) {
	a := testVideo(t, 3)
	b := testVideo(t, 2)
	out, err := a.Concat(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 5 {
		t.Fatalf("len = %d", out.Len())
	}
	c := New("other", 8, 8, 30)
	if _, err := a.Concat(c); err == nil {
		t.Fatal("geometry mismatch should fail")
	}
}

func TestEveryNth(t *testing.T) {
	v := testVideo(t, 10)
	out, err := v.EveryNth(3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 { // frames 0,3,6,9
		t.Fatalf("len = %d", out.Len())
	}
	if !out.Frame(1).Equal(v.Frame(3)) {
		t.Fatal("wrong stride")
	}
	if out.FPS != v.FPS/3 {
		t.Fatalf("fps = %v", out.FPS)
	}
	if _, err := v.EveryNth(0); err == nil {
		t.Fatal("zero stride should fail")
	}
}

func TestWriteGIF(t *testing.T) {
	v := testVideo(t, 6)
	path := t.TempDir() + "/anim/out.gif"
	if err := v.WriteGIF(path, 2); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("empty gif")
	}
	empty := New("e", 4, 4, 30)
	if err := empty.WriteGIF(path, 1); err == nil {
		t.Fatal("empty video should fail")
	}
}

func TestWebSafePalette(t *testing.T) {
	p := webSafePalette()
	if len(p) == 0 || len(p) > 256 {
		t.Fatalf("palette size %d", len(p))
	}
}
