package vid

import (
	"bytes"
	"strings"
	"testing"

	"verro/internal/img"
)

func testVideo(t *testing.T, frames int) *Video {
	t.Helper()
	v := New("test", 16, 12, 30)
	for i := 0; i < frames; i++ {
		f := img.NewFilled(16, 12, img.RGB{R: uint8(i * 10), G: 50, B: 200})
		f.AddNoise(5, uint64(i))
		if err := v.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	return v
}

func TestAppendValidatesDims(t *testing.T) {
	v := New("x", 8, 8, 30)
	if err := v.Append(img.New(8, 8)); err != nil {
		t.Fatal(err)
	}
	if err := v.Append(img.New(9, 8)); err == nil {
		t.Fatal("mismatched frame should be rejected")
	}
}

func TestFramePanicsOutOfRange(t *testing.T) {
	v := testVideo(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	v.Frame(2)
}

func TestCloneIsDeep(t *testing.T) {
	v := testVideo(t, 3)
	c := v.Clone()
	c.Frame(0).Set(0, 0, img.RGB{R: 1, G: 2, B: 3})
	if v.Frame(0).At(0, 0) == (img.RGB{R: 1, G: 2, B: 3}) {
		t.Fatal("clone shares frame storage")
	}
}

func TestDuration(t *testing.T) {
	v := testVideo(t, 60)
	if v.Duration() != 2 {
		t.Fatalf("Duration = %v, want 2", v.Duration())
	}
	if (&Video{FPS: 0}).Duration() != 0 {
		t.Fatal("zero fps duration should be 0")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	v := testVideo(t, 10)
	v.Moving = true
	var buf bytes.Buffer
	n, err := Encode(&buf, v)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("size accounting: reported %d, actual %d", n, buf.Len())
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != v.Name || back.W != v.W || back.H != v.H ||
		back.FPS != v.FPS || back.Moving != v.Moving || back.Len() != v.Len() {
		t.Fatalf("metadata mismatch: %v vs %v", back, v)
	}
	for i := range v.Frames {
		if !v.Frame(i).Equal(back.Frame(i)) {
			t.Fatalf("frame %d differs after round trip", i)
		}
	}
}

func TestCodecEmptyVideo(t *testing.T) {
	v := New("empty", 4, 4, 24)
	var buf bytes.Buffer
	if _, err := Encode(&buf, v); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Fatalf("empty video decoded with %d frames", back.Len())
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"XXXX",
		"VVF1",                              // truncated header
		"VVF1" + strings.Repeat("\x00", 10), // still truncated
	}
	for _, c := range cases {
		if _, err := Decode(strings.NewReader(c)); err == nil {
			t.Errorf("Decode(%q) should fail", c)
		}
	}
}

func TestDeltaCompressionHelps(t *testing.T) {
	// A static video (all frames identical) must compress far better than
	// the raw pixel volume.
	v := New("static", 64, 64, 30)
	base := img.NewFilled(64, 64, img.RGB{R: 80, G: 120, B: 160})
	base.AddNoise(25, 1)
	for i := 0; i < 20; i++ {
		if err := v.Append(base.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	size, err := EncodedSize(v)
	if err != nil {
		t.Fatal(err)
	}
	raw := int64(64 * 64 * 3 * 20)
	if size >= raw/4 {
		t.Fatalf("static video should compress >4x: got %d of %d raw", size, raw)
	}
}

func TestWriteReadFile(t *testing.T) {
	v := testVideo(t, 4)
	path := t.TempDir() + "/nested/video.vvf"
	n, err := WriteFile(path, v)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatal("expected positive written size")
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != v.Len() {
		t.Fatalf("frames %d != %d", back.Len(), v.Len())
	}
	for i := range v.Frames {
		if !v.Frame(i).Equal(back.Frame(i)) {
			t.Fatalf("frame %d differs", i)
		}
	}
}
