// Package vid implements the video substrate: an in-memory frame-sequence
// container and a compact binary codec (.vvf) used to persist the synthetic
// benchmark videos and the sanitized outputs, including the bandwidth
// accounting the paper reports in Table 3.
package vid

import (
	"fmt"

	"verro/internal/img"
)

// Video is an in-memory sequence of equally sized frames plus the metadata
// the pipeline needs.
type Video struct {
	Name   string
	W, H   int
	FPS    float64
	Moving bool // true when recorded by a moving camera (MOT06-style)
	Frames []*img.Image
}

// New returns an empty video shell with the given geometry.
func New(name string, w, h int, fps float64) *Video {
	return &Video{Name: name, W: w, H: h, FPS: fps}
}

// Len returns the number of frames.
func (v *Video) Len() int { return len(v.Frames) }

// Append adds a frame, validating its dimensions.
func (v *Video) Append(f *img.Image) error {
	if f.W != v.W || f.H != v.H {
		return fmt.Errorf("vid: frame %dx%d does not match video %dx%d", f.W, f.H, v.W, v.H)
	}
	v.Frames = append(v.Frames, f)
	return nil
}

// Frame returns frame k; it panics on out-of-range access, which is always
// a programming error in this codebase.
func (v *Video) Frame(k int) *img.Image {
	if k < 0 || k >= len(v.Frames) {
		panic(fmt.Sprintf("vid: frame %d out of range [0,%d)", k, len(v.Frames))) //lint:allow panicfree invariant guard: unreachable from input data
	}
	return v.Frames[k]
}

// Clone deep-copies the video.
func (v *Video) Clone() *Video {
	out := &Video{Name: v.Name, W: v.W, H: v.H, FPS: v.FPS, Moving: v.Moving}
	out.Frames = make([]*img.Image, len(v.Frames))
	for i, f := range v.Frames {
		out.Frames[i] = f.Clone()
	}
	return out
}

// Duration returns the play time in seconds.
func (v *Video) Duration() float64 {
	if v.FPS <= 0 {
		return 0
	}
	return float64(len(v.Frames)) / v.FPS
}

func (v *Video) String() string {
	return fmt.Sprintf("%s: %dx%d, %d frames @ %.3g fps", v.Name, v.W, v.H, len(v.Frames), v.FPS)
}
