package vid

import (
	"bytes"
	"math"
	"testing"

	"verro/internal/img"
)

// FuzzVVF throws arbitrary byte streams at the .vvf decoder. Invariants:
// Decode must return an error — never panic — on malformed input, and any
// stream it accepts must survive a re-encode/decode round trip bit-exactly.
//
// Run a longer session with: go test -run=^$ -fuzz=FuzzVVF -fuzztime=60s ./internal/vid/
func FuzzVVF(f *testing.F) {
	seed := func(frames, w, h int, moving bool) []byte {
		v := New("fuzz", w, h, 25)
		v.Moving = moving
		for i := 0; i < frames; i++ {
			fr := img.New(w, h)
			for p := range fr.Pix {
				fr.Pix[p] = uint8(p*31 + i*7)
			}
			if err := v.Append(fr); err != nil {
				f.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if _, err := Encode(&buf, v); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	valid := seed(3, 16, 12, true)
	f.Add(valid)
	f.Add(seed(0, 8, 8, false))
	f.Add(seed(1, 1, 1, false))
	f.Add(valid[:len(valid)/2]) // truncated mid-payload
	corrupted := append([]byte(nil), valid...)
	corrupted[len(corrupted)/2] ^= 0x40
	f.Add(corrupted) // bit flip inside the gzip body
	f.Add([]byte(vvfMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly: that is the contract for garbage input
		}
		var buf bytes.Buffer
		if _, err := Encode(&buf, v); err != nil {
			t.Fatalf("re-encode of accepted stream failed: %v", err)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatalf("decode of re-encoded stream failed: %v", err)
		}
		// FPS compares by bits: fuzzed headers can carry NaN payloads, which
		// Encode preserves exactly but == would reject.
		if back.W != v.W || back.H != v.H || back.Len() != v.Len() ||
			math.Float64bits(back.FPS) != math.Float64bits(v.FPS) ||
			back.Moving != v.Moving || back.Name != v.Name {
			t.Fatalf("round trip changed header: got %v, want %v", back, v)
		}
		for i := range v.Frames {
			if !bytes.Equal(v.Frame(i).Pix, back.Frame(i).Pix) {
				t.Fatalf("round trip changed frame %d", i)
			}
		}
	})
}
