package vid

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"verro/internal/img"
)

// WriteY4M exports the video as YUV4MPEG2 (4:2:0), the raw interchange
// format every standard player and encoder consumes (`mpv out.y4m`,
// `ffmpeg -i out.y4m out.mp4`). Dimensions are rounded down to even.
func WriteY4M(w io.Writer, v *Video) error {
	if v.Len() == 0 {
		return errors.New("vid: empty video")
	}
	ww := v.W &^ 1
	hh := v.H &^ 1
	if ww == 0 || hh == 0 {
		return fmt.Errorf("vid: video %dx%d too small for 4:2:0", v.W, v.H)
	}
	fpsNum, fpsDen := fpsFraction(v.FPS)

	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "YUV4MPEG2 W%d H%d F%d:%d Ip A1:1 C420jpeg\n", ww, hh, fpsNum, fpsDen); err != nil {
		return err
	}
	ySize := ww * hh
	cSize := (ww / 2) * (hh / 2)
	buf := make([]byte, ySize+2*cSize)
	for _, f := range v.Frames {
		if _, err := bw.WriteString("FRAME\n"); err != nil {
			return err
		}
		frameToI420(f, ww, hh, buf)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveY4M writes the video to a .y4m file.
func SaveY4M(path string, v *Video) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteY4M(f, v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// fpsFraction approximates an FPS value as a small integer fraction.
func fpsFraction(fps float64) (num, den int) {
	switch {
	case fps <= 0:
		return 25, 1
	case fps == float64(int(fps)):
		return int(fps), 1
	default:
		// Two decimal places cover the common 29.97/23.976 cases closely
		// enough for preview purposes.
		return int(fps*100 + 0.5), 100
	}
}

// frameToI420 converts an RGB frame (cropped to ww×hh) to planar I420 in
// buf, using BT.601 full-range coefficients.
func frameToI420(f *img.Image, ww, hh int, buf []byte) {
	ySize := ww * hh
	cw := ww / 2
	ch := hh / 2
	uOff := ySize
	vOff := ySize + cw*ch

	for y := 0; y < hh; y++ {
		for x := 0; x < ww; x++ {
			c := f.At(x, y)
			r, g, b := float64(c.R), float64(c.G), float64(c.B)
			buf[y*ww+x] = clamp8(0.299*r + 0.587*g + 0.114*b)
		}
	}
	for y := 0; y < ch; y++ {
		for x := 0; x < cw; x++ {
			// Average the 2×2 RGB block for chroma.
			var r, g, b float64
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					c := f.At(2*x+dx, 2*y+dy)
					r += float64(c.R)
					g += float64(c.G)
					b += float64(c.B)
				}
			}
			r /= 4
			g /= 4
			b /= 4
			buf[uOff+y*cw+x] = clamp8(-0.168736*r - 0.331264*g + 0.5*b + 128)
			buf[vOff+y*cw+x] = clamp8(0.5*r - 0.418688*g - 0.081312*b + 128)
		}
	}
}

func clamp8(v float64) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v + 0.5)
}
