package vid

import (
	"bytes"
	"strings"
	"testing"

	"verro/internal/img"
)

func TestWriteY4MHeaderAndSize(t *testing.T) {
	v := testVideo(t, 3) // 16x12
	var buf bytes.Buffer
	if err := WriteY4M(&buf, v); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "YUV4MPEG2 W16 H12 F30:1") {
		t.Fatalf("header = %q", out[:40])
	}
	// 3 frames × (FRAME\n + Y 16*12 + U+V 8*6 each).
	frameBytes := 6 + 16*12 + 2*8*6
	wantLen := len("YUV4MPEG2 W16 H12 F30:1 Ip A1:1 C420jpeg\n") + 3*frameBytes
	if buf.Len() != wantLen {
		t.Fatalf("stream length %d, want %d", buf.Len(), wantLen)
	}
}

func TestWriteY4MOddDimensionsCropped(t *testing.T) {
	v := New("odd", 7, 5, 24)
	_ = v.Append(img.NewFilled(7, 5, img.RGB{R: 128, G: 128, B: 128}))
	var buf bytes.Buffer
	if err := WriteY4M(&buf, v); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "YUV4MPEG2 W6 H4") {
		t.Fatalf("header = %q", buf.String()[:24])
	}
}

func TestWriteY4MGrayIsNeutralChroma(t *testing.T) {
	v := New("gray", 4, 4, 30)
	_ = v.Append(img.NewFilled(4, 4, img.RGB{R: 100, G: 100, B: 100}))
	var buf bytes.Buffer
	if err := WriteY4M(&buf, v); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Locate the frame payload after "FRAME\n".
	idx := bytes.Index(data, []byte("FRAME\n")) + 6
	y := data[idx : idx+16]
	u := data[idx+16 : idx+16+4]
	vv := data[idx+20 : idx+24]
	for _, b := range y {
		if b != 100 {
			t.Fatalf("luma = %d, want 100", b)
		}
	}
	for i := range u {
		if u[i] != 128 || vv[i] != 128 {
			t.Fatalf("gray chroma should be 128: u=%d v=%d", u[i], vv[i])
		}
	}
}

func TestWriteY4MValidation(t *testing.T) {
	if err := WriteY4M(&bytes.Buffer{}, New("e", 8, 8, 30)); err == nil {
		t.Fatal("empty video should fail")
	}
	tiny := New("t", 1, 1, 30)
	_ = tiny.Append(img.New(1, 1))
	if err := WriteY4M(&bytes.Buffer{}, tiny); err == nil {
		t.Fatal("1x1 video should fail (no even crop)")
	}
}

func TestSaveY4M(t *testing.T) {
	v := testVideo(t, 2)
	path := t.TempDir() + "/sub/clip.y4m"
	if err := SaveY4M(path, v); err != nil {
		t.Fatal(err)
	}
}

func TestFpsFraction(t *testing.T) {
	if n, d := fpsFraction(30); n != 30 || d != 1 {
		t.Fatalf("30fps = %d/%d", n, d)
	}
	if n, d := fpsFraction(29.97); n != 2997 || d != 100 {
		t.Fatalf("29.97fps = %d/%d", n, d)
	}
	if n, d := fpsFraction(0); n != 25 || d != 1 {
		t.Fatalf("default fps = %d/%d", n, d)
	}
}
