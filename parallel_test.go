package verro

// The parallel-equivalence suite is the proof obligation of the worker-pool
// layer (internal/par): every converted hot path must produce bit-identical
// output whether it runs on one worker or many, because the experiment
// harness (EXPERIMENTS.md) depends on seeded reproducibility. The tests
// here run the same seeded pipelines at workers=1 and workers=8 and compare
// every artifact byte for byte: recovered tracks, presence vectors,
// synthetic tracks, raw frames, and the encoded .vvf stream.

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"verro/internal/detect"
	"verro/internal/geom"
	"verro/internal/img"
	"verro/internal/inpaint"
	"verro/internal/par"
	"verro/internal/vid"
)

// equivScale shrinks the benchmark presets so the double runs stay
// CI-friendly while still exercising every pipeline stage (detection,
// tracking, key frames, background median, inpainting, rendering).
const equivScale = 0.25

func withWorkersT(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := par.SetWorkers(n)
	defer par.SetWorkers(prev)
	fn()
}

type pipelineArtifacts struct {
	tracks    *TrackSet
	presence  [][]bool
	synTracks *TrackSet
	synFrames []*img.Image
	encoded   []byte
}

// runPipeline executes detect→track→sanitize for a preset at the current
// worker setting and captures every published artifact.
func runPipeline(t *testing.T, name string) pipelineArtifacts {
	t.Helper()
	preset, err := BenchmarkPreset(name)
	if err != nil {
		t.Fatal(err)
	}
	g, err := GenerateBenchmark(preset.Scaled(equivScale))
	if err != nil {
		t.Fatal(err)
	}
	tracks, err := DetectAndTrack(g.Video, DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Seed = 7
	res, err := Sanitize(g.Video, tracks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var presence [][]bool
	for _, v := range res.Phase1.Output {
		presence = append(presence, []bool(v))
	}
	var buf bytes.Buffer
	if _, err := vid.Encode(&buf, res.Synthetic); err != nil {
		t.Fatal(err)
	}
	return pipelineArtifacts{
		tracks:    tracks,
		presence:  presence,
		synTracks: res.SyntheticTracks,
		synFrames: res.Synthetic.Frames,
		encoded:   buf.Bytes(),
	}
}

func compareArtifacts(t *testing.T, serial, parallel pipelineArtifacts) {
	t.Helper()
	if !reflect.DeepEqual(serial.tracks, parallel.tracks) {
		t.Error("recovered tracks differ between workers=1 and workers=8")
	}
	if !reflect.DeepEqual(serial.presence, parallel.presence) {
		t.Error("randomized presence vectors differ between workers=1 and workers=8")
	}
	if !reflect.DeepEqual(serial.synTracks, parallel.synTracks) {
		t.Error("synthetic tracks differ between workers=1 and workers=8")
	}
	if len(serial.synFrames) != len(parallel.synFrames) {
		t.Fatalf("synthetic frame counts differ: %d vs %d",
			len(serial.synFrames), len(parallel.synFrames))
	}
	for k := range serial.synFrames {
		if !bytes.Equal(serial.synFrames[k].Pix, parallel.synFrames[k].Pix) {
			t.Fatalf("synthetic frame %d differs between workers=1 and workers=8", k)
		}
	}
	if !bytes.Equal(serial.encoded, parallel.encoded) {
		t.Error("encoded .vvf streams differ between workers=1 and workers=8")
	}
}

// TestParallelEquivalence proves the worker pool is scheduling-only: the
// full detect→track→sanitize pipeline at workers=1 and workers=8 produces
// byte-identical artifacts on all three benchmark presets.
func TestParallelEquivalence(t *testing.T) {
	for _, name := range []string{"MOT01", "MOT03", "MOT06"} {
		t.Run(name, func(t *testing.T) {
			var serial, parallel pipelineArtifacts
			withWorkersT(t, 1, func() { serial = runPipeline(t, name) })
			withWorkersT(t, 8, func() { parallel = runPipeline(t, name) })
			compareArtifacts(t, serial, parallel)
		})
	}
}

// runPipelineWith executes the same pipeline as runPipeline but with the
// worker count scoped to the calls (cfg.Workers, not the global setting)
// and an optional trace attached.
func runPipelineWith(t *testing.T, name string, workers int, trace *Trace) pipelineArtifacts {
	t.Helper()
	preset, err := BenchmarkPreset(name)
	if err != nil {
		t.Fatal(err)
	}
	g, err := GenerateBenchmark(preset.Scaled(equivScale))
	if err != nil {
		t.Fatal(err)
	}
	pcfg := DefaultPipelineConfig()
	pcfg.Workers = workers
	pcfg.Trace = trace
	tracks, err := DetectAndTrack(g.Video, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.Workers = workers
	cfg.Trace = trace
	res, err := Sanitize(g.Video, tracks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var presence [][]bool
	for _, v := range res.Phase1.Output {
		presence = append(presence, []bool(v))
	}
	var buf bytes.Buffer
	if _, err := vid.Encode(&buf, res.Synthetic); err != nil {
		t.Fatal(err)
	}
	return pipelineArtifacts{
		tracks:    tracks,
		presence:  presence,
		synTracks: res.SyntheticTracks,
		synFrames: res.Synthetic.Frames,
		encoded:   buf.Bytes(),
	}
}

// TestTraceEquivalence proves instrumentation is observational only: the
// seeded pipeline produces byte-identical artifacts with tracing off and
// with tracing on, at one worker and at eight — and the traced runs really
// did collect spans.
func TestTraceEquivalence(t *testing.T) {
	off := runPipelineWith(t, "MOT01", 1, nil)
	for _, workers := range []int{1, 8} {
		trace := NewTrace("equiv")
		on := runPipelineWith(t, "MOT01", workers, trace)
		compareArtifacts(t, off, on)
		rep := trace.Report()
		if rep.Span == nil || len(rep.Span.Children) == 0 {
			t.Fatalf("workers=%d: traced run collected no spans", workers)
		}
		if rep.Pool == nil || rep.Pool.ChunksDispatched == 0 {
			t.Fatalf("workers=%d: traced run collected no pool gauges", workers)
		}
	}
}

// TestConcurrentSanitizeScopedWorkers is the regression test for the old
// `defer par.SetWorkers(par.SetWorkers(cfg.Workers))` save/restore, which
// was non-reentrant: two concurrent Sanitize calls with different Workers
// raced on the global and could leave it permanently wrong. With scoped
// pools the global must survive untouched and both outputs must stay
// bit-identical to a serial reference.
func TestConcurrentSanitizeScopedWorkers(t *testing.T) {
	preset, err := BenchmarkPreset("MOT01")
	if err != nil {
		t.Fatal(err)
	}
	g, err := GenerateBenchmark(preset.Scaled(0.15))
	if err != nil {
		t.Fatal(err)
	}
	tracks, err := DetectAndTrack(g.Video, DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []byte {
		cfg := DefaultConfig()
		cfg.Seed = 7
		cfg.Workers = workers
		res, err := Sanitize(g.Video, tracks, cfg)
		if err != nil {
			t.Error(err)
			return nil
		}
		var buf bytes.Buffer
		if _, err := vid.Encode(&buf, res.Synthetic); err != nil {
			t.Error(err)
			return nil
		}
		return buf.Bytes()
	}
	want := run(0)

	const sentinel = 3
	prev := par.SetWorkers(sentinel)
	defer par.SetWorkers(prev)

	workerMix := []int{1, 8, 2, 5}
	got := make([][]byte, len(workerMix))
	var wg sync.WaitGroup
	for i, w := range workerMix {
		wg.Add(1)
		go func(i, w int) {
			defer wg.Done()
			got[i] = run(w)
		}(i, w)
	}
	wg.Wait()

	if par.Workers() != sentinel {
		t.Fatalf("global worker count = %d after concurrent runs, want %d", par.Workers(), sentinel)
	}
	for i, g := range got {
		if !bytes.Equal(g, want) {
			t.Errorf("concurrent run %d (workers=%d) output differs from reference", i, workerMix[i])
		}
	}
}

// TestParallelEquivalenceHOGDetection covers the sliding-window pyramid
// path, which the background-subtraction default does not reach.
func TestParallelEquivalenceHOGDetection(t *testing.T) {
	preset, err := BenchmarkPreset("MOT01")
	if err != nil {
		t.Fatal(err)
	}
	g, err := GenerateBenchmark(preset.Scaled(0.1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultPipelineConfig()
	cfg.Detector = DetectorHOGSVM
	run := func(workers int) *TrackSet {
		cfg.Workers = workers
		tr, err := DetectAndTrack(g.Video, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	if serial, parallel := run(1), run(8); !reflect.DeepEqual(serial, parallel) {
		t.Fatal("HOG+SVM tracks differ between workers=1 and workers=8")
	}
}

// TestParallelEquivalenceInpaint drives the Criminisi filler directly: the
// always-covered-pixel case in a real pipeline is rare, so the SSD-search
// and fill-front conversions get a dedicated byte-identity check.
func TestParallelEquivalenceInpaint(t *testing.T) {
	src := img.New(64, 48)
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			src.Set(x, y, img.RGB{
				R: uint8(40 + 3*(x%16)),
				G: uint8(90 + 5*(y%8)),
				B: uint8((x + y) % 256),
			})
		}
	}
	mask := inpaint.NewMask(64, 48)
	mask.SetRect(geom.RectAt(20, 15, 18, 12), true)
	run := func(workers int) *img.Image {
		var out *img.Image
		withWorkersT(t, workers, func() {
			var err error
			out, err = inpaint.Inpaint(src, mask, inpaint.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
		})
		return out
	}
	if serial, parallel := run(1), run(8); !bytes.Equal(serial.Pix, parallel.Pix) {
		t.Fatal("inpainted images differ between workers=1 and workers=8")
	}
}

// TestParallelEquivalenceMedianBackground checks the per-pixel median model
// byte for byte at an awkward pixel count (shards don't divide evenly).
func TestParallelEquivalenceMedianBackground(t *testing.T) {
	frames := make([]*img.Image, 17)
	for i := range frames {
		f := img.New(53, 31)
		for p := range f.Pix {
			f.Pix[p] = uint8((p*7 + i*13) % 256)
		}
		frames[i] = f
	}
	run := func(workers int) *img.Image {
		var out *img.Image
		withWorkersT(t, workers, func() {
			var err error
			out, err = detect.MedianBackground(frames, 1)
			if err != nil {
				t.Fatal(err)
			}
		})
		return out
	}
	if serial, parallel := run(1), run(8); !bytes.Equal(serial.Pix, parallel.Pix) {
		t.Fatal("median backgrounds differ between workers=1 and workers=8")
	}
}
