package verro

import (
	"fmt"
	"io"

	"verro/internal/detect"
	"verro/internal/img"
	"verro/internal/obs"
	"verro/internal/par"
	"verro/internal/scene"
	"verro/internal/stream"
	"verro/internal/track"
	"verro/internal/vid"
)

// PipelineConfig tunes the detection→tracking preprocessing that turns raw
// video into the sensitive-object tracks VERRO sanitizes.
type PipelineConfig struct {
	// Detector selects the detection algorithm.
	Detector DetectorKind
	// Tracker tunes the SORT-style tracker.
	Tracker track.Config
	// BackgroundStep subsamples frames for the median background model of
	// the background-subtraction detector; 0 means an automatic stride.
	BackgroundStep int
	// Style is the scene style used to train the HOG+SVM detector; it is
	// only consulted when Detector == DetectorHOGSVM.
	Style scene.Style
	// Seed drives detector training randomness.
	Seed int64
	// Workers overrides the worker-pool size for this call (0 keeps the
	// process-wide setting: VERRO_WORKERS or GOMAXPROCS). The output is
	// bit-identical at any worker count; only wall-clock time changes. The
	// override is scoped to this call's pool — concurrent DetectAndTrack
	// calls with different Workers never interfere.
	Workers int
	// Trace, when non-nil, collects detection/tracking stage spans, counters
	// and worker-pool gauges. Nil disables all instrumentation at zero cost;
	// tracing never perturbs the output.
	Trace *Trace
	// WindowFrames, when positive, runs detection and tracking as a
	// bounded-memory streaming pass over at most WindowFrames frames at a
	// time; 0 keeps the whole-clip batch path. Both paths produce
	// bit-identical tracks for the same configuration.
	WindowFrames int
}

// DetectorKind selects a detection algorithm.
type DetectorKind int

// Available detectors.
const (
	// DetectorBackgroundSub is the fast background-subtraction detector,
	// appropriate for static cameras.
	DetectorBackgroundSub DetectorKind = iota
	// DetectorHOGSVM is the sliding-window HOG+SVM detector (the paper's
	// detector family); slower but camera-motion tolerant.
	DetectorHOGSVM
)

// DefaultPipelineConfig uses background subtraction with default tracking.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		Detector: DetectorBackgroundSub,
		Tracker:  track.DefaultConfig(),
		Style:    scene.StyleSquare,
		Seed:     1,
	}
}

// DetectAndTrack runs detection and tracking over the video and returns
// the recovered object tracks — the preprocessing stage of Figure 2. With
// cfg.WindowFrames > 0 the run is delegated to the windowed streaming
// driver (see DetectAndTrackStream), whose output is bit-identical.
func DetectAndTrack(v *Video, cfg PipelineConfig) (*TrackSet, error) {
	if v == nil || v.Len() == 0 {
		return nil, fmt.Errorf("verro: empty video")
	}
	if cfg.WindowFrames > 0 {
		return DetectAndTrackStream(stream.NewSliceSource(vid.MetaOf(v), v.Frames), cfg)
	}
	// A scoped pool (not the former global SetWorkers save/restore, which was
	// non-reentrant) so concurrent calls with different Workers each get
	// their own size. Workers <= 0 falls through to the process default.
	pool := par.NewPool(cfg.Workers)
	cfg.Trace.AttachPool(pool)
	root := cfg.Trace.Root()
	var det detect.Detector
	switch cfg.Detector {
	case DetectorHOGSVM:
		d, err := detect.NewPedestrianDetector(cfg.Style, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("verro: build detector: %w", err)
		}
		d.RT = obs.Runtime{Pool: pool}
		det = d
	case DetectorBackgroundSub:
		step := cfg.BackgroundStep
		if step <= 0 {
			step = detect.AutoStep(v.Len())
		}
		bgSpan := root.Child("background")
		bg, err := detect.MedianBackgroundRT(v.Frames, step, obs.Runtime{Pool: pool, Span: bgSpan})
		bgSpan.End()
		if err != nil {
			return nil, fmt.Errorf("verro: background model: %w", err)
		}
		det = detect.NewBGSubtractor(bg)
	default:
		return nil, fmt.Errorf("verro: unknown detector %d", cfg.Detector)
	}
	tracks, err := track.RunRT(v.Frames, det, cfg.Tracker, obs.Runtime{Pool: pool, Span: root})
	if err != nil {
		return nil, fmt.Errorf("verro: tracking: %w", err)
	}
	return tracks, nil
}

// DetectAndTrackStream is DetectAndTrack over a bounded-memory frame
// source. The background-subtraction detector needs its median background
// before any detection, so that path makes two passes: a sampling pass
// retaining only the ~40 strided frames the temporal median consumes, a
// Reset, then a windowed detect-and-track pass. The HOG+SVM detector is
// model-driven and needs a single pass. Tracks are bit-identical to the
// batch path: the sample stack, the per-frame detections, and the tracker
// step order are all exactly those of DetectAndTrack on the decoded clip.
func DetectAndTrackStream(src stream.Source, cfg PipelineConfig) (*TrackSet, error) {
	meta := src.Meta()
	if meta.Frames == 0 {
		return nil, fmt.Errorf("verro: empty video")
	}
	pool := par.NewPool(cfg.Workers)
	cfg.Trace.AttachPool(pool)
	root := cfg.Trace.Root()
	var det detect.Detector
	switch cfg.Detector {
	case DetectorHOGSVM:
		d, err := detect.NewPedestrianDetector(cfg.Style, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("verro: build detector: %w", err)
		}
		d.RT = obs.Runtime{Pool: pool}
		det = d
	case DetectorBackgroundSub:
		step := cfg.BackgroundStep
		if step <= 0 {
			step = detect.AutoStep(meta.Frames)
		}
		bgSpan := root.Child("background")
		bg, err := medianBackgroundStream(src, cfg.WindowFrames, step, obs.Runtime{Pool: pool, Span: bgSpan})
		bgSpan.End()
		if err != nil {
			return nil, fmt.Errorf("verro: background model: %w", err)
		}
		if err := src.Reset(); err != nil {
			return nil, fmt.Errorf("verro: rewind for detection pass: %w", err)
		}
		det = detect.NewBGSubtractor(bg)
	default:
		return nil, fmt.Errorf("verro: unknown detector %d", cfg.Detector)
	}
	runner := track.NewRunnerRT(det, cfg.Tracker, obs.Runtime{Pool: pool, Span: root})
	err := forEachWindow(src, cfg.WindowFrames, func(frames []*img.Image, _ int) error {
		return runner.Window(frames)
	})
	if err != nil {
		return nil, fmt.Errorf("verro: tracking: %w", err)
	}
	tracks, err := runner.Finish()
	if err != nil {
		return nil, fmt.Errorf("verro: tracking: %w", err)
	}
	return tracks, nil
}

// medianBackgroundStream computes the background-subtraction median model
// from a bounded sampling pass: it retains only the frames the batch
// MedianBackgroundRT would stride onto (every step-th frame — at most ~40
// under detect.AutoStep) and feeds them to the same median with step 1,
// which stacks the identical samples and therefore returns the identical
// model.
func medianBackgroundStream(src stream.Source, window, step int, rt obs.Runtime) (*Image, error) {
	if step < 1 {
		step = 1
	}
	var samples []*img.Image
	err := forEachWindow(src, window, func(frames []*img.Image, start int) error {
		for i, f := range frames {
			if (start+i)%step == 0 {
				samples = append(samples, f)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return detect.MedianBackgroundRT(samples, 1, rt)
}

// forEachWindow drains the source in runs of at most window frames
// (window <= 0 means one whole-clip run), invoking fn with each run and its
// absolute start index.
func forEachWindow(src stream.Source, window int, fn func([]*img.Image, int) error) error {
	for {
		frames, start, err := src.Next(window)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(frames, start); err != nil {
			return err
		}
	}
}
