package verro

import (
	"fmt"

	"verro/internal/detect"
	"verro/internal/obs"
	"verro/internal/par"
	"verro/internal/scene"
	"verro/internal/track"
)

// PipelineConfig tunes the detection→tracking preprocessing that turns raw
// video into the sensitive-object tracks VERRO sanitizes.
type PipelineConfig struct {
	// Detector selects the detection algorithm.
	Detector DetectorKind
	// Tracker tunes the SORT-style tracker.
	Tracker track.Config
	// BackgroundStep subsamples frames for the median background model of
	// the background-subtraction detector; 0 means an automatic stride.
	BackgroundStep int
	// Style is the scene style used to train the HOG+SVM detector; it is
	// only consulted when Detector == DetectorHOGSVM.
	Style scene.Style
	// Seed drives detector training randomness.
	Seed int64
	// Workers overrides the worker-pool size for this call (0 keeps the
	// process-wide setting: VERRO_WORKERS or GOMAXPROCS). The output is
	// bit-identical at any worker count; only wall-clock time changes. The
	// override is scoped to this call's pool — concurrent DetectAndTrack
	// calls with different Workers never interfere.
	Workers int
	// Trace, when non-nil, collects detection/tracking stage spans, counters
	// and worker-pool gauges. Nil disables all instrumentation at zero cost;
	// tracing never perturbs the output.
	Trace *Trace
}

// DetectorKind selects a detection algorithm.
type DetectorKind int

// Available detectors.
const (
	// DetectorBackgroundSub is the fast background-subtraction detector,
	// appropriate for static cameras.
	DetectorBackgroundSub DetectorKind = iota
	// DetectorHOGSVM is the sliding-window HOG+SVM detector (the paper's
	// detector family); slower but camera-motion tolerant.
	DetectorHOGSVM
)

// DefaultPipelineConfig uses background subtraction with default tracking.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		Detector: DetectorBackgroundSub,
		Tracker:  track.DefaultConfig(),
		Style:    scene.StyleSquare,
		Seed:     1,
	}
}

// DetectAndTrack runs detection and tracking over the video and returns
// the recovered object tracks — the preprocessing stage of Figure 2.
func DetectAndTrack(v *Video, cfg PipelineConfig) (*TrackSet, error) {
	if v == nil || v.Len() == 0 {
		return nil, fmt.Errorf("verro: empty video")
	}
	// A scoped pool (not the former global SetWorkers save/restore, which was
	// non-reentrant) so concurrent calls with different Workers each get
	// their own size. Workers <= 0 falls through to the process default.
	pool := par.NewPool(cfg.Workers)
	cfg.Trace.AttachPool(pool)
	root := cfg.Trace.Root()
	var det detect.Detector
	switch cfg.Detector {
	case DetectorHOGSVM:
		d, err := detect.NewPedestrianDetector(cfg.Style, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("verro: build detector: %w", err)
		}
		d.RT = obs.Runtime{Pool: pool}
		det = d
	case DetectorBackgroundSub:
		step := cfg.BackgroundStep
		if step <= 0 {
			step = detect.AutoStep(v.Len())
		}
		bgSpan := root.Child("background")
		bg, err := detect.MedianBackgroundRT(v.Frames, step, obs.Runtime{Pool: pool, Span: bgSpan})
		bgSpan.End()
		if err != nil {
			return nil, fmt.Errorf("verro: background model: %w", err)
		}
		det = detect.NewBGSubtractor(bg)
	default:
		return nil, fmt.Errorf("verro: unknown detector %d", cfg.Detector)
	}
	tracks, err := track.RunRT(v.Frames, det, cfg.Tracker, obs.Runtime{Pool: pool, Span: root})
	if err != nil {
		return nil, fmt.Errorf("verro: tracking: %w", err)
	}
	return tracks, nil
}
