package verro

// End-of-stream and boundary-condition tests for the windowed pipeline: the
// cases where window arithmetic is most likely to go wrong are clips shorter
// than the background sampler's 9-frame clamp, final windows smaller than
// the budget, and tracker state that must survive a window boundary (an
// object whose track ends mid-window, so its miss-aging spans windows).

import (
	"fmt"
	"reflect"
	"testing"

	"verro/internal/geom"
	"verro/internal/img"
	"verro/internal/stream"
	"verro/internal/vid"
)

// tinyEquivalence runs batch and streamed sanitization of the same clip and
// requires identical synthetic frames, returning the streamed result for
// further ledger checks. Tracks come from the batch detector; both paths
// sanitize the same input.
func tinyEquivalence(t *testing.T, v *Video, window int) *Result {
	t.Helper()
	tracks, err := DetectAndTrack(v, DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	streamTracks, err := DetectAndTrackStream(stream.NewSliceSource(vid.MetaOf(v), v.Frames), PipelineConfig{
		Detector:     DetectorBackgroundSub,
		Tracker:      DefaultPipelineConfig().Tracker,
		Seed:         1,
		Style:        DefaultPipelineConfig().Style,
		WindowFrames: window,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tracks, streamTracks) {
		t.Fatal("windowed track recovery differs from batch")
	}

	cfg := DefaultConfig()
	cfg.Seed = 11
	batch, err := Sanitize(v, tracks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg := cfg
	scfg.WindowFrames = window
	streamed, err := Sanitize(v, tracks, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Synthetic.Frames) != len(streamed.Synthetic.Frames) {
		t.Fatalf("frame count: batch %d, streamed %d", len(batch.Synthetic.Frames), len(streamed.Synthetic.Frames))
	}
	for i := range batch.Synthetic.Frames {
		if !batch.Synthetic.Frames[i].Equal(streamed.Synthetic.Frames[i]) {
			t.Fatalf("frame %d differs between batch and streamed runs", i)
		}
	}
	if batch.Epsilon != streamed.Epsilon {
		t.Fatalf("epsilon: batch %v, streamed %v", batch.Epsilon, streamed.Epsilon)
	}
	return streamed
}

// shortClip generates a scaled MOT01 clip of exactly n frames.
func shortClip(t *testing.T, n int) *Video {
	t.Helper()
	preset, err := BenchmarkPreset("MOT01")
	if err != nil {
		t.Fatal(err)
	}
	p := preset.Scaled(equivScale)
	p.Frames = n
	p.Name = fmt.Sprintf("edge-%d", n)
	g, err := GenerateBenchmark(p)
	if err != nil {
		t.Fatal(err)
	}
	return g.Video
}

// TestStreamShortClip streams a clip shorter than the background sampler's
// 9-frame clamp (detect.AutoStep retains at least 9 samples when it can):
// with 5 frames every frame is a background sample and the final window is
// the whole clip.
func TestStreamShortClip(t *testing.T) {
	v := shortClip(t, 5)
	res := tinyEquivalence(t, v, 2)
	if len(res.Windows) != 3 {
		t.Fatalf("5 frames at window 2 should make 3 ledger windows, got %d", len(res.Windows))
	}
}

// TestStreamPartialFinalWindow checks the last window carrying fewer frames
// than the budget: 21 frames at window 9 must partition 9/9/3 in the ledger
// and still match the batch output.
func TestStreamPartialFinalWindow(t *testing.T) {
	v := shortClip(t, 21)
	res := tinyEquivalence(t, v, 9)
	var sizes []int
	for _, w := range res.Windows {
		sizes = append(sizes, w.Frames)
	}
	if !reflect.DeepEqual(sizes, []int{9, 9, 3}) {
		t.Fatalf("ledger window sizes = %v, want [9 9 3]", sizes)
	}
}

// TestStreamTrackerHandoff exercises tracker state across a window
// boundary: a single bright object crosses the clip and disappears
// mid-window (frame 14 of 24 at window 8, so its post-exit miss-aging spans
// the second and third windows). The windowed tracker must report exactly
// the batch tracker's tracks, and the object's recovered track must end
// around its true exit, not at a window boundary.
func TestStreamTrackerHandoff(t *testing.T) {
	const (
		w, h     = 64, 48
		nFrames  = 24
		lastSeen = 13 // object present in frames 0..13, gone from 14 on
		window   = 8
	)
	v := NewVideo("handoff", w, h, 30)
	bg := img.RGB{R: 40, G: 40, B: 40}
	fg := img.RGB{R: 230, G: 220, B: 90}
	for i := 0; i < nFrames; i++ {
		f := img.NewFilled(w, h, bg)
		if i <= lastSeen {
			x := 4 + i*2
			f.Fill(geom.R(x, 16, x+10, 30), fg)
		}
		v.Frames = append(v.Frames, f)
	}

	batch, err := DetectAndTrack(v, DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	pcfg := DefaultPipelineConfig()
	pcfg.WindowFrames = window
	streamed, err := DetectAndTrack(v, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch, streamed) {
		t.Fatal("windowed tracks differ from batch across the exit boundary")
	}
	if len(streamed.Tracks) != 1 {
		t.Fatalf("expected 1 recovered track, got %d", len(streamed.Tracks))
	}
	tr := streamed.Tracks[0]
	first, last, ok := tr.Span()
	if !ok {
		t.Fatal("recovered track is empty")
	}
	if first > 2 {
		t.Fatalf("track starts at frame %d, expected near 0", first)
	}
	if last < lastSeen-1 || last > lastSeen {
		t.Fatalf("track ends at frame %d, expected the true exit around %d (not a window boundary)", last, lastSeen)
	}
}
