package verro

// The streaming-equivalence suite is the proof obligation of the bounded-
// memory pipeline (internal/stream and the windowed drivers): sanitizing a
// clip window by window must produce byte-identical artifacts to the batch
// path — same recovered tracks, same randomized presence vectors, same
// synthetic tracks, same frames, same encoded .vvf stream — at every window
// size and worker count, because windowing is a memory strategy, not a
// semantic knob. It also pins the per-window privacy ledger to the batch ε:
// integer picked-key-frame counts per window must sum to the run's K, and
// the recomposed K·ln((2−f)/f) must equal the batch Epsilon bit for bit.

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"verro/internal/vid"
)

// streamEquivCases are the window budgets the acceptance criteria name:
// small overlapping-run windows, a mid window, a window larger than the
// scaled clips, and 0 for one whole-clip window.
var streamEquivCases = []int{9, 16, 64, 0}

// runPipelineStream executes the same seeded pipeline as runPipelineWith
// but windowed: detection+tracking and the sanitizer both stream with the
// given window budget, and the epsilon/ledger diagnostics are captured for
// the accounting checks.
func runPipelineStream(t *testing.T, name string, window, workers int) (pipelineArtifacts, *Result) {
	t.Helper()
	preset, err := BenchmarkPreset(name)
	if err != nil {
		t.Fatal(err)
	}
	g, err := GenerateBenchmark(preset.Scaled(equivScale))
	if err != nil {
		t.Fatal(err)
	}
	pcfg := DefaultPipelineConfig()
	pcfg.Workers = workers
	pcfg.WindowFrames = window
	if window <= 0 {
		// "whole-clip window": still routed through the streaming driver.
		pcfg.WindowFrames = g.Video.Len()
	}
	tracks, err := DetectAndTrack(g.Video, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.Workers = workers
	cfg.WindowFrames = pcfg.WindowFrames
	res, err := Sanitize(g.Video, tracks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var presence [][]bool
	for _, v := range res.Phase1.Output {
		presence = append(presence, []bool(v))
	}
	var buf bytes.Buffer
	if _, err := vid.Encode(&buf, res.Synthetic); err != nil {
		t.Fatal(err)
	}
	return pipelineArtifacts{
		tracks:    tracks,
		presence:  presence,
		synTracks: res.SyntheticTracks,
		synFrames: res.Synthetic.Frames,
		encoded:   buf.Bytes(),
	}, res
}

// checkWindowLedger verifies the per-window privacy accounting recomposes
// exactly: windows partition the clip, integer picked counts sum to the
// run's K, and the closed-form total over that K equals the batch ε with
// zero float drift.
func checkWindowLedger(t *testing.T, res *Result, clipLen int) {
	t.Helper()
	if len(res.Windows) == 0 {
		t.Fatal("streaming run recorded no window ledger")
	}
	next, picked := 0, 0
	var epsSum float64
	for i, w := range res.Windows {
		if w.Start != next {
			t.Fatalf("ledger window %d starts at %d, want %d", i, w.Start, next)
		}
		next += w.Frames
		picked += w.Picked
		epsSum += w.Epsilon
	}
	if next != clipLen {
		t.Fatalf("ledger covers %d frames, clip has %d", next, clipLen)
	}
	if picked != len(res.Phase1.Picked) {
		t.Fatalf("ledger picked %d key frames, phase 1 picked %d", picked, len(res.Phase1.Picked))
	}
	recomposed := float64(picked) * math.Log((2-res.Phase1.F)/res.Phase1.F)
	if recomposed != res.Epsilon {
		t.Fatalf("recomposed epsilon %v != batch epsilon %v", recomposed, res.Epsilon)
	}
	// The float sum of the per-window entries is the same ledger viewed
	// additively; it may differ from the closed form only by accumulation
	// order, so it gets a tolerance while the integer path above is exact.
	if math.Abs(epsSum-res.Epsilon) > 1e-9*math.Max(1, math.Abs(res.Epsilon)) {
		t.Fatalf("summed window epsilon %v drifts from %v", epsSum, res.Epsilon)
	}
}

// TestStreamEquivalence proves windowing is memory-only: the streamed
// pipeline reproduces the batch pipeline's artifacts byte for byte on all
// three benchmark presets, across the acceptance-criteria window sizes and
// worker counts, and its privacy ledger recomposes to the batch ε exactly.
func TestStreamEquivalence(t *testing.T) {
	for _, name := range []string{"MOT01", "MOT03", "MOT06"} {
		t.Run(name, func(t *testing.T) {
			batch := runPipelineWith(t, name, 1, nil)
			for _, window := range streamEquivCases {
				for _, workers := range []int{1, 4} {
					t.Run(fmt.Sprintf("window=%d/workers=%d", window, workers), func(t *testing.T) {
						streamed, res := runPipelineStream(t, name, window, workers)
						compareArtifacts(t, batch, streamed)
						checkWindowLedger(t, res, len(batch.synFrames))
					})
				}
			}
		})
	}
}

// TestStreamFileToFile proves the full disk-to-disk streaming path — .vvf
// windowed decode, two-pass detect/track, windowed sanitize, windowed .vvf
// encode — writes a file byte-identical to the batch path's WriteVideo, and
// that the streaming track recovery matches the batch tracker.
func TestStreamFileToFile(t *testing.T) {
	preset, err := BenchmarkPreset("MOT01")
	if err != nil {
		t.Fatal(err)
	}
	g, err := GenerateBenchmark(preset.Scaled(equivScale))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "in.vvf")
	if _, err := WriteVideo(in, g.Video); err != nil {
		t.Fatal(err)
	}

	// Batch reference: everything in memory.
	tracks, err := DetectAndTrack(g.Video, DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Seed = 7
	res, err := Sanitize(g.Video, tracks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(dir, "batch.vvf")
	if _, err := WriteVideo(want, res.Synthetic); err != nil {
		t.Fatal(err)
	}

	// Streaming run: decode from disk in windows, encode to disk in windows.
	const window = 16
	src, err := OpenVideoSource(in)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	pcfg := DefaultPipelineConfig()
	pcfg.WindowFrames = window
	streamTracks, err := DetectAndTrackStream(src, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tracks, streamTracks) {
		t.Fatal("streamed track recovery differs from batch")
	}
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	got := filepath.Join(dir, "stream.vvf")
	sink, err := NewVideoSink(got, StreamOutputMeta(src.Meta()))
	if err != nil {
		t.Fatal(err)
	}
	scfg := cfg
	scfg.WindowFrames = window
	sres, err := SanitizeStream(src, streamTracks, scfg, sink)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Synthetic != nil {
		t.Fatal("streaming run materialized the synthetic clip in memory")
	}
	wantBytes, err := os.ReadFile(want)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := os.ReadFile(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBytes, gotBytes) {
		t.Fatal("disk-to-disk streaming output differs from batch WriteVideo")
	}
	if !reflect.DeepEqual(res.SyntheticTracks, sres.SyntheticTracks) {
		t.Fatal("streaming synthetic tracks differ from batch")
	}
}
