package verro

// FuzzStreamWindow throws arbitrary clip-length/window-budget combinations
// at the streaming pipeline — window larger than the clip, window of one
// frame, budgets that divide the clip evenly or leave a one-frame tail, the
// empty clip — and holds it to two properties: it never panics, and
// whenever the batch pipeline succeeds the streamed pipeline produces the
// byte-identical encoded output (and the same recovered tracks). Run the
// seed corpus with `go test -run FuzzStreamWindow`; fuzz with
// `go test -fuzz FuzzStreamWindow`.

import (
	"bytes"
	"reflect"
	"testing"

	"verro/internal/vid"
)

func FuzzStreamWindow(f *testing.F) {
	// Seeds cover the acceptance-criteria shapes: empty clip, single frame,
	// window == 1, window == clip, window > clip, partial final window.
	f.Add(uint8(0), int16(4))
	f.Add(uint8(1), int16(1))
	f.Add(uint8(12), int16(1))
	f.Add(uint8(12), int16(12))
	f.Add(uint8(12), int16(64))
	f.Add(uint8(21), int16(9))
	f.Add(uint8(40), int16(16))

	f.Fuzz(func(t *testing.T, nFrames uint8, window int16) {
		frames := int(nFrames) % 41 // keep each case tiny on a 1-CPU host
		w := int(window)
		if w < 1 {
			w = 1
		}

		preset, err := BenchmarkPreset("MOT01")
		if err != nil {
			t.Fatal(err)
		}
		p := preset.Scaled(0.15)
		p.Frames = frames
		p.Name = "fuzz"
		p.Objects = 2

		if frames == 0 {
			// The generator refuses empty presets; the pipeline must refuse
			// empty videos without panicking, on both paths.
			v := NewVideo("fuzz-empty", p.W, p.H, p.FPS)
			if _, err := DetectAndTrack(v, DefaultPipelineConfig()); err == nil {
				t.Fatal("batch DetectAndTrack accepted an empty clip")
			}
			pcfg := DefaultPipelineConfig()
			pcfg.WindowFrames = w
			if _, err := DetectAndTrack(v, pcfg); err == nil {
				t.Fatal("streamed DetectAndTrack accepted an empty clip")
			}
			return
		}

		g, err := GenerateBenchmark(p)
		if err != nil {
			t.Fatal(err)
		}

		// Batch reference. Tiny degenerate clips may be legitimately
		// rejected (e.g. no objects survive tracking); the property then is
		// that the streamed path rejects them too instead of panicking.
		batchTracks, batchErr := DetectAndTrack(g.Video, DefaultPipelineConfig())
		pcfg := DefaultPipelineConfig()
		pcfg.WindowFrames = w
		streamTracks, streamErr := DetectAndTrack(g.Video, pcfg)
		if (batchErr == nil) != (streamErr == nil) {
			t.Fatalf("track recovery disagreement: batch err=%v, streamed err=%v", batchErr, streamErr)
		}
		if batchErr != nil {
			return
		}
		if !reflect.DeepEqual(batchTracks, streamTracks) {
			t.Fatalf("tracks differ for %d frames at window %d", frames, w)
		}

		cfg := DefaultConfig()
		cfg.Seed = 3
		batchRes, batchErr := Sanitize(g.Video, batchTracks, cfg)
		scfg := cfg
		scfg.WindowFrames = w
		streamRes, streamErr := Sanitize(g.Video, streamTracks, scfg)
		if (batchErr == nil) != (streamErr == nil) {
			t.Fatalf("sanitize disagreement: batch err=%v, streamed err=%v", batchErr, streamErr)
		}
		if batchErr != nil {
			return
		}
		var batchBuf, streamBuf bytes.Buffer
		if _, err := vid.Encode(&batchBuf, batchRes.Synthetic); err != nil {
			t.Fatal(err)
		}
		if _, err := vid.Encode(&streamBuf, streamRes.Synthetic); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(batchBuf.Bytes(), streamBuf.Bytes()) {
			t.Fatalf("encoded outputs differ for %d frames at window %d", frames, w)
		}
	})
}
