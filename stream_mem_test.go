package verro

// The memory-ceiling test is the other half of the streaming pipeline's
// contract: equivalence (stream_equiv_test.go) proves windowing changes
// nothing about the output, and this file proves it changes everything about
// peak memory — live heap during a disk-to-disk streamed run must be bounded
// by the window budget plus O(1) analysis state (the ~40-frame background
// sample stack, per-frame histograms, the phase-2 plan), NOT by the clip
// length. Concretely: growing the clip 4× at a fixed window must grow the
// post-GC peak live heap by at most 1.3×.
//
// Set VERRO_STREAM_JSON to a path to emit the measured peaks as JSON
// (BENCH_stream.json in the repo is the committed record for this host).

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"verro/internal/img"
	"verro/internal/scene"
	"verro/internal/stream"
)

// heapProbe tracks the maximum post-GC live heap observed at sample points.
// Forcing a GC before reading HeapAlloc makes the reading "live bytes", not
// "bytes since last collection", so the peak is a property of what the
// pipeline retains rather than of collector scheduling.
type heapProbe struct {
	peak uint64
}

func (p *heapProbe) sample() {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > p.peak {
		p.peak = ms.HeapAlloc
	}
}

// probeSource samples the heap every time the pipeline materializes a
// window, i.e. exactly at the window boundaries of every streaming pass.
type probeSource struct {
	stream.Source
	probe *heapProbe
}

func (s *probeSource) Next(max int) ([]*img.Image, int, error) {
	frames, start, err := s.Source.Next(max)
	if err == nil {
		s.probe.sample()
	}
	return frames, start, err
}

// probeSink samples the heap every time a rendered window is handed off.
type probeSink struct {
	stream.Sink
	probe *heapProbe
}

func (s *probeSink) Append(frames []*img.Image) error {
	if err := s.Sink.Append(frames); err != nil {
		return err
	}
	s.probe.sample()
	return nil
}

// memClip writes a MOT01-style clip with the given frame count to disk and
// returns its path. Nothing of the generated clip stays referenced by the
// caller, so the streamed run's heap holds only what the pipeline retains.
func memClip(t *testing.T, dir string, frames int) string {
	t.Helper()
	preset, err := BenchmarkPreset("MOT01")
	if err != nil {
		t.Fatal(err)
	}
	p := preset.Scaled(equivScale)
	p.Frames = frames
	p.Name = "memclip"
	g, err := scene.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, p.Name+".vvf")
	if _, err := WriteVideo(path, g.Video); err != nil {
		t.Fatal(err)
	}
	return path
}

// streamedPeak runs the full disk-to-disk streaming pipeline — windowed
// detect+track, then windowed sanitize — over the clip at path and returns
// the peak live heap observed at window boundaries, in bytes.
func streamedPeak(t *testing.T, path string, window int) uint64 {
	t.Helper()
	probe := &heapProbe{}
	src, err := OpenVideoSource(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	probed := &probeSource{Source: src, probe: probe}

	pcfg := DefaultPipelineConfig()
	pcfg.WindowFrames = window
	tracks, err := DetectAndTrackStream(probed, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(t.TempDir(), "out.vvf")
	sink, err := NewVideoSink(out, StreamOutputMeta(src.Meta()))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.WindowFrames = window
	if _, err := SanitizeStream(probed, tracks, cfg, &probeSink{Sink: sink, probe: probe}); err != nil {
		t.Fatal(err)
	}
	return probe.peak
}

// batchPeak measures the live heap right after the batch pipeline finishes,
// with the input clip, the track set and the full synthetic clip all still
// live — the baseline the streaming path exists to avoid.
func batchPeak(t *testing.T, path string) uint64 {
	t.Helper()
	v, err := ReadVideo(path)
	if err != nil {
		t.Fatal(err)
	}
	tracks, err := DetectAndTrack(v, DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Seed = 7
	res, err := Sanitize(v, tracks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := &heapProbe{}
	probe.sample()
	runtime.KeepAlive(v)
	runtime.KeepAlive(res)
	return probe.peak
}

// streamMemReport is the BENCH_stream.json shape.
type streamMemReport struct {
	NumCPU       int     `json:"num_cpu"`
	WindowFrames int     `json:"window_frames"`
	FramesShort  int     `json:"frames_short"`
	FramesLong   int     `json:"frames_long"`
	PeakShort    uint64  `json:"stream_peak_bytes_short"`
	PeakLong     uint64  `json:"stream_peak_bytes_long"`
	PeakRatio    float64 `json:"stream_peak_ratio"`
	BatchPeak    uint64  `json:"batch_live_bytes_long"`
	Note         string  `json:"note"`
}

// TestStreamMemoryCeiling is the bounded-memory acceptance test: a 4×
// longer clip at the same window budget may grow the streamed pipeline's
// peak live heap by at most 1.3×. The residual growth that is allowed comes
// from genuinely per-frame (but tiny) state: frame histograms, presence
// vectors, the phase-2 placement plan and the track set.
func TestStreamMemoryCeiling(t *testing.T) {
	const (
		window      = 16
		framesShort = 120
		framesLong  = 4 * framesShort
	)
	dir := t.TempDir()
	short := memClip(t, dir, framesShort)
	long := memClip(t, dir, framesLong)

	peakShort := streamedPeak(t, short, window)
	peakLong := streamedPeak(t, long, window)
	ratio := float64(peakLong) / float64(peakShort)
	t.Logf("streamed peak live heap: %d frames → %.2f MiB, %d frames → %.2f MiB (ratio %.3f)",
		framesShort, float64(peakShort)/(1<<20), framesLong, float64(peakLong)/(1<<20), ratio)
	if ratio > 1.3 {
		t.Fatalf("peak live heap grew %.3f× for a 4× longer clip; streaming ceiling requires <= 1.3×", ratio)
	}

	batch := batchPeak(t, long)
	t.Logf("batch live heap with clip+synthetic resident: %.2f MiB", float64(batch)/(1<<20))

	if path := os.Getenv("VERRO_STREAM_JSON"); path != "" {
		report := streamMemReport{
			NumCPU:       runtime.NumCPU(),
			WindowFrames: window,
			FramesShort:  framesShort,
			FramesLong:   framesLong,
			PeakShort:    peakShort,
			PeakLong:     peakLong,
			PeakRatio:    ratio,
			BatchPeak:    batch,
			Note:         "post-GC HeapAlloc sampled at window boundaries of a disk-to-disk streamed run; batch figure is live heap with input and synthetic clips resident",
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
