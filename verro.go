// Package verro is a video sanitization library with a formal privacy
// guarantee: it reproduces "Publishing Video Data with Indistinguishable
// Objects" (EDBT 2020). Given a video and the tracks of its sensitive
// objects, VERRO generates a synthetic video in which every object's
// content, presence pattern and trajectory are randomized such that any two
// objects are ε-indistinguishable (an object-level analogue of local
// differential privacy), while aggregate utility — object counts, crowd
// densities, motion structure — is preserved.
//
// The typical flow is:
//
//	video := ...                        // *verro.Video (or verro.GenerateBenchmark)
//	tracks, _ := verro.DetectAndTrack(video, verro.DefaultPipelineConfig())
//	res, _ := verro.Sanitize(video, tracks, verro.DefaultConfig())
//	verro.WriteVideo("out.vvf", res.Synthetic)
//
// The privacy level is governed by the flip probability f (Config.Phase1.F)
// and the number K of key frames the optimizer allocates budget to:
// ε = K·ln((2−f)/f). Use Epsilon and FlipProbability to convert between
// the two parameterizations.
package verro

import (
	"verro/internal/core"
	"verro/internal/img"
	"verro/internal/inpaint"
	"verro/internal/interp"
	"verro/internal/keyframe"
	"verro/internal/ldp"
	"verro/internal/metrics"
	"verro/internal/motio"
	"verro/internal/obs"
	"verro/internal/scene"
	"verro/internal/stream"
	"verro/internal/vid"
)

// Core data model.
type (
	// Video is an in-memory frame sequence with metadata.
	Video = vid.Video
	// Image is an 8-bit RGB raster frame.
	Image = img.Image
	// Track is one object's per-frame bounding boxes under a stable ID.
	Track = motio.Track
	// TrackSet is the collection of sensitive objects O₁..Oₙ.
	TrackSet = motio.TrackSet
)

// Configuration and results.
type (
	// Config is the end-to-end sanitizer configuration.
	Config = core.Config
	// Result is the sanitizer output: synthetic video plus diagnostics.
	Result = core.Result
	// Phase1Config tunes dimension reduction, key-frame selection and
	// random response.
	Phase1Config = core.Phase1Config
	// Phase2Config tunes coordinate assignment and rendering.
	Phase2Config = core.Phase2Config
	// KeyframeConfig tunes the Algorithm 2 segmentation.
	KeyframeConfig = keyframe.Config
	// InpaintConfig tunes the Criminisi background filler.
	InpaintConfig = inpaint.Config
)

// Observability: a Trace collects a span per pipeline stage plus monotonic
// stage counters and worker-pool gauges. Attach one via Config.Trace or
// PipelineConfig.Trace; a nil Trace disables all instrumentation at zero
// cost, and tracing never perturbs seeded outputs.
type (
	// Trace is one run's span tree, counters and pool gauges.
	Trace = obs.Trace
	// TraceReport is the machine-readable run report a finished Trace
	// serializes to (the -trace out.json schema; see DESIGN.md).
	TraceReport = obs.Report
)

// NewTrace starts a trace whose root span carries the given name.
func NewTrace(name string) *Trace { return obs.NewTrace(name) }

// Benchmark dataset generation (the MOT16 stand-ins).
type (
	// Preset describes a synthetic benchmark video.
	Preset = scene.Preset
	// Generated bundles a benchmark video with its ground truth.
	Generated = scene.Generated
)

// NewVideo returns an empty video shell.
func NewVideo(name string, w, h int, fps float64) *Video { return vid.New(name, w, h, fps) }

// NewTrackSet returns an empty object collection.
func NewTrackSet() *TrackSet { return motio.NewTrackSet() }

// NewTrack returns an empty track for one object.
func NewTrack(id int, class string) *Track { return motio.NewTrack(id, class) }

// DefaultConfig returns the paper's default sanitizer settings (f = 0.1,
// key-frame optimization on, hybrid interpolation).
func DefaultConfig() Config { return core.DefaultConfig() }

// Sanitize runs the full VERRO pipeline over the video and its sensitive
// object tracks. The input is not modified. Setting Config.WindowFrames > 0
// routes the run through the bounded-memory streaming driver; the output is
// bit-identical to the batch path for the same seed.
func Sanitize(v *Video, tracks *TrackSet, cfg Config) (*Result, error) {
	return core.Sanitize(v, tracks, cfg)
}

// Bounded-memory streaming pipeline. A Source delivers frames in windows of
// a caller-chosen budget and a Sink receives the sanitized frames the same
// way, so arbitrarily long clips process in O(window) memory. Open a .vvf
// file as a Source with OpenVideoSource, create the output with
// NewVideoSink, and drive the pipeline with DetectAndTrackStream +
// SanitizeStream (or set WindowFrames on the batch entry points to stream
// over in-memory clips).
type (
	// StreamMeta is the frame-count/geometry header of a streamed video.
	StreamMeta = stream.Meta
	// StreamSource delivers a video's frames in bounded windows.
	StreamSource = stream.Source
	// StreamSink consumes sanitized frames in bounded windows.
	StreamSink = stream.Sink
	// WindowSpend is one streaming window's entry in the per-window privacy
	// ledger (Result.Windows): the picked key frames falling inside the
	// window and the ε they account for. The ledger recomposes exactly to
	// the run's total ε.
	WindowSpend = core.WindowSpend
)

// OpenVideoSource opens a .vvf file as a bounded-memory frame source;
// frames decode window by window straight from disk.
func OpenVideoSource(path string) (*vid.FileSource, error) { return vid.OpenFileSource(path) }

// NewVideoSink creates a .vvf file that is encoded window by window as
// frames arrive. The appended frames must total meta.Frames before Close.
func NewVideoSink(path string, meta StreamMeta) (*vid.FileSink, error) {
	return vid.CreateFileSink(path, meta)
}

// StreamOutputMeta derives the output sink metadata (the "-verro" name, same
// geometry and timing) from a source's metadata.
func StreamOutputMeta(in StreamMeta) StreamMeta { return core.OutputMeta(in) }

// SanitizeStream runs the VERRO pipeline over a frame source in bounded
// windows of cfg.WindowFrames frames, appending the synthetic video to sink
// window by window. Output is bit-identical to Sanitize on the decoded clip
// with the same cfg; peak memory stays O(WindowFrames) however long the
// clip. The sink is closed on success; Result.Synthetic is nil (the frames
// went to the sink) and Result.Windows carries the per-window privacy
// ledger.
func SanitizeStream(src StreamSource, tracks *TrackSet, cfg Config, sink StreamSink) (*Result, error) {
	return core.SanitizeStream(src, tracks, cfg, sink)
}

// SanitizeStreamFrom is SanitizeStream with a resumable window cursor:
// rendering resumes at startFrame (a window boundary) and only frames from
// there on reach sink; the caller owns the earlier frames, typically in a
// checkpointed staging file a killed run left behind. The rendered suffix,
// ledger, tracks and ε are bit-identical to the corresponding parts of an
// uninterrupted run — the property verrod's checkpoint/resume is built on.
func SanitizeStreamFrom(src StreamSource, tracks *TrackSet, cfg Config, sink StreamSink, startFrame int) (*Result, error) {
	return core.SanitizeStreamFrom(src, tracks, cfg, sink, startFrame)
}

// MultiTypeResult is the output of SanitizeMultiType.
type MultiTypeResult = core.MultiTypeResult

// SanitizeMultiType sanitizes a video containing several object classes
// (e.g. pedestrians and vehicles): Phase I runs independently per class so
// every class is ε-indistinguishable within itself, and one synthetic
// video is rendered with sprites of the matching classes (paper
// Section 5, "Multiple Object Types").
func SanitizeMultiType(v *Video, tracks *TrackSet, cfg Config) (*MultiTypeResult, error) {
	return core.SanitizeMultiType(v, tracks, cfg)
}

// JointResult is the output of SanitizeJoint.
type JointResult = core.JointResult

// SanitizeJoint sanitizes several cameras' videos under one total ε
// budget, split across cameras, and reports the sequential-composition
// bound for objects appearing in all of them (the multi-video protection
// the paper's conclusion raises as future work).
func SanitizeJoint(videos []*Video, tracks []*TrackSet, totalEps float64, cfg Config) (*JointResult, error) {
	return core.SanitizeJoint(videos, tracks, totalEps, cfg)
}

// Epsilon returns the ε-Object Indistinguishability level achieved by flip
// probability f over k budget-allocated key frames: ε = k·ln((2−f)/f).
func Epsilon(k int, f float64) (float64, error) { return ldp.Epsilon(k, f) }

// FlipProbability inverts Epsilon: the f that spends budget eps over k key
// frames.
func FlipProbability(k int, eps float64) (float64, error) { return ldp.FlipProbability(k, eps) }

// GenerateBenchmark renders one of the synthetic benchmark presets
// (BenchmarkPresets) into a video plus exact ground-truth tracks.
func GenerateBenchmark(p Preset) (*Generated, error) { return scene.Generate(p) }

// BenchmarkPresets returns the three MOT16-style presets of the paper's
// Table 1 (MOT01, MOT03, MOT06).
func BenchmarkPresets() []Preset { return scene.Presets() }

// BenchmarkPreset looks a preset up by name ("MOT01", "MOT03", "MOT06").
func BenchmarkPreset(name string) (Preset, error) { return scene.PresetByName(name) }

// WriteVideo persists a video in the .vvf container and returns its
// compressed size in bytes.
func WriteVideo(path string, v *Video) (int64, error) { return vid.WriteFile(path, v) }

// ReadVideo loads a .vvf video.
func ReadVideo(path string) (*Video, error) { return vid.ReadFile(path) }

// EncodedSize returns the compressed .vvf size of v without writing it.
func EncodedSize(v *Video) (int64, error) { return vid.EncodedSize(v) }

// SaveTracks and LoadTracks persist object annotations as CSV.
func SaveTracks(path string, t *TrackSet) error { return t.SaveCSV(path) }

// LoadTracks reads object annotations saved by SaveTracks.
func LoadTracks(path string) (*TrackSet, error) { return motio.LoadCSV(path) }

// TrajectoryDeviation measures the normalized trajectory deviation between
// original and synthetic tracks (paper Section 6.2.2; lower is better).
func TrajectoryDeviation(original, synthetic *TrackSet) float64 {
	return metrics.TrajectoryDeviation(original, synthetic)
}

// Interpolation methods for Phase2Config.Interp.
const (
	InterpLagrange = interp.MethodLagrange
	InterpLinear   = interp.MethodLinear
	InterpNearest  = interp.MethodNearest
	InterpHybrid   = interp.MethodHybrid
)
