package verro

import (
	"math"
	"testing"

	"verro/internal/geom"
	"verro/internal/img"
	"verro/internal/scene"
)

func smallBenchmark(t *testing.T) *Generated {
	t.Helper()
	p := Preset{
		Name: "api-test", W: 96, H: 72, Frames: 36, Objects: 4,
		FPS: 30, Style: scene.StyleSquare, Class: scene.Pedestrian, Seed: 201,
	}
	g, err := GenerateBenchmark(p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPublicAPISanitize(t *testing.T) {
	g := smallBenchmark(t)
	cfg := DefaultConfig()
	cfg.Keyframe.MaxSegmentLen = 8
	res, err := Sanitize(g.Video, g.Truth, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Synthetic.Len() != g.Video.Len() {
		t.Fatalf("synthetic frames = %d", res.Synthetic.Len())
	}
	if res.Epsilon <= 0 {
		t.Fatalf("epsilon = %v", res.Epsilon)
	}
	dev := TrajectoryDeviation(g.Truth, res.SyntheticTracks)
	if dev < 0 || dev > 1 {
		t.Fatalf("deviation = %v outside [0,1]", dev)
	}
}

func TestEpsilonHelpers(t *testing.T) {
	eps, err := Epsilon(10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	f, err := FlipProbability(10, eps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-0.5) > 1e-9 {
		t.Fatalf("round trip f = %v", f)
	}
}

func TestBenchmarkPresetLookup(t *testing.T) {
	if len(BenchmarkPresets()) != 3 {
		t.Fatal("want 3 presets")
	}
	p, err := BenchmarkPreset("MOT01")
	if err != nil || p.Frames != 450 {
		t.Fatalf("MOT01: %+v %v", p, err)
	}
	if _, err := BenchmarkPreset("bogus"); err == nil {
		t.Fatal("unknown preset should fail")
	}
}

func TestVideoAndTrackIO(t *testing.T) {
	g := smallBenchmark(t)
	dir := t.TempDir()
	n, err := WriteVideo(dir+"/v.vvf", g.Video)
	if err != nil || n <= 0 {
		t.Fatalf("WriteVideo: %d, %v", n, err)
	}
	back, err := ReadVideo(dir + "/v.vvf")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != g.Video.Len() {
		t.Fatal("video round trip lost frames")
	}
	sz, err := EncodedSize(g.Video)
	if err != nil || sz != n {
		t.Fatalf("EncodedSize = %d, want %d (%v)", sz, n, err)
	}
	if err := SaveTracks(dir+"/t.csv", g.Truth); err != nil {
		t.Fatal(err)
	}
	tr, err := LoadTracks(dir + "/t.csv")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != g.Truth.Len() {
		t.Fatal("track round trip lost objects")
	}
}

func TestDetectAndTrackBackgroundSub(t *testing.T) {
	g := smallBenchmark(t)
	tracks, err := DetectAndTrack(g.Video, DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tracks.Len() == 0 {
		t.Fatal("no tracks recovered")
	}
}

func TestDetectAndTrackValidation(t *testing.T) {
	if _, err := DetectAndTrack(nil, DefaultPipelineConfig()); err == nil {
		t.Fatal("nil video should fail")
	}
	g := smallBenchmark(t)
	cfg := DefaultPipelineConfig()
	cfg.Detector = DetectorKind(42)
	if _, err := DetectAndTrack(g.Video, cfg); err == nil {
		t.Fatal("unknown detector should fail")
	}
}

func TestFullPipelineDetectTrackSanitize(t *testing.T) {
	// The flow a library user follows: raw video → tracks → synthetic.
	g := smallBenchmark(t)
	tracks, err := DetectAndTrack(g.Video, DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Keyframe.MaxSegmentLen = 8
	res, err := Sanitize(g.Video, tracks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Synthetic.Len() != g.Video.Len() {
		t.Fatal("pipeline output incomplete")
	}
}

func TestNewConstructors(t *testing.T) {
	v := NewVideo("x", 8, 8, 30)
	if v.W != 8 {
		t.Fatal("NewVideo wrong")
	}
	ts := NewTrackSet()
	tr := NewTrack(1, "pedestrian")
	ts.Add(tr)
	if ts.Len() != 1 {
		t.Fatal("NewTrackSet/NewTrack wrong")
	}
}

func TestPublicSanitizeMultiType(t *testing.T) {
	g := smallBenchmark(t)
	for i, tr := range g.Truth.Tracks {
		if i%2 == 0 {
			tr.Class = "vehicle"
		}
	}
	res, err := SanitizeMultiType(g.Video, g.Truth, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Synthetic.Len() != g.Video.Len() {
		t.Fatal("multitype output incomplete")
	}
	if len(res.PerClass) != 2 {
		t.Fatalf("classes = %d", len(res.PerClass))
	}
}

func TestPublicSanitizeJoint(t *testing.T) {
	g1 := smallBenchmark(t)
	p2, _ := BenchmarkPreset("MOT01")
	p2 = p2.Scaled(0.12)
	p2.Seed = 999
	g2, err := GenerateBenchmark(p2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SanitizeJoint(
		[]*Video{g1.Video, g2.Video},
		[]*TrackSet{g1.Truth, g2.Truth},
		30, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 2 {
		t.Fatalf("results = %d", len(res.Results))
	}
	if res.Epsilon <= 0 || res.Epsilon > 32 {
		t.Fatalf("joint epsilon = %v", res.Epsilon)
	}
}

// TestDetectAndTrackShortClip is the regression for the automatic
// BackgroundStep on short videos: a 10-frame clip must feed (at least) nine
// frames into the median background model, so the moving object is detected
// and tracked rather than absorbed into the background.
func TestDetectAndTrackShortClip(t *testing.T) {
	v := NewVideo("short", 64, 48, 30)
	for k := 0; k < 10; k++ {
		f := img.NewFilled(64, 48, img.RGB{R: 30, G: 30, B: 30})
		f.Fill(geom.RectAt(2+5*k, 20, 8, 8), img.RGB{R: 220, G: 220, B: 220})
		if err := v.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	tracks, err := DetectAndTrack(v, DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tracks.Len() != 1 {
		t.Fatalf("tracks = %d, want exactly 1 moving object", tracks.Len())
	}
	if got := len(tracks.Tracks[0].Frames()); got < 5 {
		t.Fatalf("track covers %d frames, want >= 5", got)
	}
}
